package bench

import (
	"fmt"
	"math"
	"testing"

	"fielddb/internal/core"
	"fielddb/internal/storage"
)

// TestApproxMeasureSmoke gates the approximate tier's headline claims on the
// real fixture workload without the full fieldbench run: every approx row
// answers from the ≤4-page summary, the selective rotation's page win over
// the exact pipeline is at least 10×, the true error stays inside the
// certified bound (AggregateMeasure itself fails otherwise), and a tolerance
// the summary cannot certify falls back to the exact answer. Under -short
// (the make check smoke) the terrain shrinks, so the gate costs CI seconds.
func TestApproxMeasureSmoke(t *testing.T) {
	side := FixtureSide
	if testing.Short() {
		side = 128
	}
	rows, err := AggregateMeasure(side)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * len(Selectivities); len(rows) != want {
		t.Fatalf("AggregateMeasure(%d) returned %d rows, want %d: %s", side, len(rows), want, rowNames(rows))
	}
	for _, label := range []string{"I-Hilbert", "Tiled-LinearScan/packed"} {
		for _, sel := range Selectivities {
			base := fmt.Sprintf("Aggregate/%s/side=%d/sel=%.2f", label, side, sel)
			exact, ok := rows[base+"/exact"]
			if !ok {
				t.Fatalf("missing row %s/exact; have %s", base, rowNames(rows))
			}
			approx, ok := rows[base+"/approx"]
			if !ok {
				t.Fatalf("missing row %s/approx; have %s", base, rowNames(rows))
			}
			// The summary is a fixed run of pages: no approximate answer may
			// cost more physical reads than that, at any selectivity.
			if approx.PagesOp > 4 {
				t.Errorf("%s/approx reads %.2f pages/op, want <= 4", base, approx.PagesOp)
			}
			if approx.ErrTrue > approx.ErrBound+1e-12 {
				t.Errorf("%s/approx mean true error %.3g exceeds mean certified bound %.3g",
					base, approx.ErrTrue, approx.ErrBound)
			}
			if exact.PagesOp <= 0 || exact.SimNsOp <= 0 {
				t.Errorf("%s/exact has empty metrics: %+v", base, exact)
			}
			// The headline claim: at the selective end the summary answers for
			// at least 10× fewer pages than the exact filter+refinement walk.
			if sel == 0.01 && exact.PagesOp < 10*approx.PagesOp {
				t.Errorf("%s: exact %.1f pages/op vs approx %.1f — less than the 10x win",
					base, exact.PagesOp, approx.PagesOp)
			}
		}
	}
}

// TestApproxMeasureFallback pins the other half of the contract on the same
// fixture the measurement uses: a tolerance far below what the summary can
// certify for a mid-band query must fall back to the exact pipeline and
// return the exact count with zero residual bounds.
func TestApproxMeasureFallback(t *testing.T) {
	f, err := FixtureTerrain(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	pager := storage.NewPager(storage.NewMemDisk(storage.DefaultPageSize), storage.DefaultDiskModel, 1<<16)
	idx, err := core.BuildIHilbert(f, pager, core.HilbertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vr := f.ValueRange()
	for _, q := range FixtureQueries(vr, 0.05, 8) {
		exact, err := idx.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := idx.Aggregate(q, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fallback {
			if res.Count != float64(exact.CellsMatched) || res.CountBound != 0 {
				t.Fatalf("fallback for %v returned count %.0f (bound %.3g), exact matched %d",
					q, res.Count, res.CountBound, exact.CellsMatched)
			}
		} else if res.FractionBound > 1e-12 {
			t.Fatalf("query %v stayed approximate with bound %.3g above the 1e-12 tolerance",
				q, res.FractionBound)
		}
		loose, err := idx.Aggregate(q, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		if !loose.Approx || loose.Fallback {
			t.Fatalf("unlimited tolerance fell back for %v: %+v", q, loose)
		}
	}
}
