// Package bench reproduces the paper's evaluation (§4): it builds each
// dataset, constructs every index method over it, runs the 200-random-query
// workloads across the Qinterval grid, and reports the average per-query
// execution time series that the paper's figures plot.
//
// Two time measures are reported per point: wall-clock time of the query
// pipeline (the paper's own metric — its experiments ran against a warm OS
// file cache, so times are CPU-bound) and the simulated disk time of the
// storage layer (pages × sequential/random cost), together with page and
// candidate counts.
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"fielddb/internal/core"
	"fielddb/internal/field"
	"fielddb/internal/storage"
	"fielddb/internal/workload"
)

// IndexSpec names one index configuration under test.
type IndexSpec struct {
	Label string
	Build func(field.Field, *storage.Pager) (core.Index, error)
}

// Experiment describes one figure of the paper.
type Experiment struct {
	// Name is the figure id, e.g. "fig8a".
	Name string
	// Title is the human-readable caption.
	Title string
	// Dataset builds the field under test.
	Dataset func() (field.Field, error)
	// QIntervals is the relative query-width grid.
	QIntervals []float64
	// Specs are the index configurations compared.
	Specs []IndexSpec
	// Queries is the number of random queries per Qinterval (the paper
	// uses 200).
	Queries int
	// Seed makes the workload deterministic.
	Seed int64
}

// Point is one measured cell of a figure: one method at one Qinterval.
type Point struct {
	QInterval  float64
	WallMs     float64 // avg wall-clock ms per query (paper's axis)
	SimMs      float64 // avg simulated disk ms per query
	Pages      float64 // avg pages read per query
	Candidates float64 // avg cells fetched per query
	Matched    float64 // avg cells matched per query
	Groups     float64 // avg subfields selected per query
}

// Series is the measured curve of one index configuration.
type Series struct {
	Label  string
	Stats  core.IndexStats
	Points []Point
}

// Report is the outcome of one experiment.
type Report struct {
	Experiment Experiment
	Cells      int
	BuildTimes map[string]time.Duration
	Series     []Series
}

// Run executes the experiment. The pager pool of each index is sized to the
// paper's warm-cache setting; each query runs in its own execution context
// whose accounting models a cold start, while still deduping the query's own
// repeated page accesses.
func Run(exp Experiment) (*Report, error) {
	if exp.Queries <= 0 {
		exp.Queries = workload.QueryCount
	}
	f, err := exp.Dataset()
	if err != nil {
		return nil, fmt.Errorf("bench %s: dataset: %w", exp.Name, err)
	}
	rep := &Report{
		Experiment: exp,
		Cells:      f.NumCells(),
		BuildTimes: map[string]time.Duration{},
	}
	vr := f.ValueRange()
	for _, spec := range exp.Specs {
		pager := storage.NewPager(storage.NewMemDisk(storage.DefaultPageSize), storage.DefaultDiskModel, 1<<16)
		t0 := time.Now()
		idx, err := spec.Build(f, pager)
		if err != nil {
			return nil, fmt.Errorf("bench %s: building %s: %w", exp.Name, spec.Label, err)
		}
		rep.BuildTimes[spec.Label] = time.Since(t0)
		ser := Series{Label: spec.Label, Stats: idx.Stats()}
		for _, qi := range exp.QIntervals {
			queries := workload.Queries(vr, qi, exp.Queries, exp.Seed+int64(qi*1e6))
			var pt Point
			pt.QInterval = qi
			start := time.Now()
			for _, q := range queries {
				res, err := idx.Query(q)
				if err != nil {
					return nil, fmt.Errorf("bench %s: %s query %v: %w", exp.Name, spec.Label, q, err)
				}
				pt.SimMs += res.IO.SimElapsed.Seconds() * 1e3
				pt.Pages += float64(res.IO.Reads)
				pt.Candidates += float64(res.CellsFetched)
				pt.Matched += float64(res.CellsMatched)
				pt.Groups += float64(res.CandidateGroups)
			}
			wall := time.Since(start).Seconds() * 1e3
			n := float64(len(queries))
			pt.WallMs = wall / n
			pt.SimMs /= n
			pt.Pages /= n
			pt.Candidates /= n
			pt.Matched /= n
			pt.Groups /= n
			ser.Points = append(ser.Points, pt)
		}
		rep.Series = append(rep.Series, ser)
	}
	return rep, nil
}

// SpecsForMethods returns the standard builders for the paper's methods.
// I-Quad and I-Threshold take their interval-size threshold as a fraction of
// the dataset's value range; the paper gives no principled choice (its
// critique of the method), so 1/16 of the range is used by default.
func SpecsForMethods(methods ...core.Method) []IndexSpec {
	var out []IndexSpec
	for _, m := range methods {
		m := m
		switch m {
		case core.MethodLinearScan:
			out = append(out, IndexSpec{Label: string(m), Build: func(f field.Field, p *storage.Pager) (core.Index, error) {
				return core.BuildLinearScan(f, p)
			}})
		case core.MethodIAll:
			out = append(out, IndexSpec{Label: string(m), Build: func(f field.Field, p *storage.Pager) (core.Index, error) {
				return core.BuildIAll(f, p, core.IAllOptions{})
			}})
		case core.MethodIHilbert:
			out = append(out, IndexSpec{Label: string(m), Build: func(f field.Field, p *storage.Pager) (core.Index, error) {
				return core.BuildIHilbert(f, p, core.HilbertOptions{})
			}})
		case core.MethodIQuad:
			out = append(out, IndexSpec{Label: string(m), Build: func(f field.Field, p *storage.Pager) (core.Index, error) {
				vr := f.ValueRange()
				return core.BuildIQuad(f, p, core.ThresholdOptions{MaxSize: vr.Length()/16 + 1})
			}})
		case core.MethodIThresh:
			out = append(out, IndexSpec{Label: string(m), Build: func(f field.Field, p *storage.Pager) (core.Index, error) {
				vr := f.ValueRange()
				return core.BuildIThreshold(f, p, core.ThresholdOptions{MaxSize: vr.Length()/16 + 1})
			}})
		}
	}
	return out
}

// Table renders the report as the paper-style series table: one row per
// Qinterval, one column group per method.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%d cells, %d queries/point)\n",
		r.Experiment.Name, r.Experiment.Title, r.Cells, queriesOf(r.Experiment))
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  built %-12s in %-12v %s\n", s.Label, r.BuildTimes[s.Label].Round(time.Millisecond), s.Stats)
	}
	fmt.Fprintf(&b, "\n%-10s", "Qinterval")
	for _, s := range r.Series {
		fmt.Fprintf(&b, " | %-28s", s.Label)
	}
	fmt.Fprintf(&b, "\n%-10s", "")
	for range r.Series {
		fmt.Fprintf(&b, " | %8s %8s %9s", "wall ms", "sim ms", "pages")
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 10+len(r.Series)*31))
	b.WriteByte('\n')
	for pi, qi := range r.Experiment.QIntervals {
		fmt.Fprintf(&b, "%-10.3f", qi)
		for _, s := range r.Series {
			p := s.Points[pi]
			fmt.Fprintf(&b, " | %8.2f %8.2f %9.1f", p.WallMs, p.SimMs, p.Pages)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders every measured point as comma-separated rows with a header.
func (r *Report) CSV() string {
	var b strings.Builder
	b.WriteString("experiment,method,qinterval,wall_ms,sim_ms,pages,cells_fetched,cells_matched,groups\n")
	for _, s := range r.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%s,%g,%.4f,%.4f,%.2f,%.2f,%.2f,%.2f\n",
				r.Experiment.Name, s.Label, p.QInterval, p.WallMs, p.SimMs, p.Pages, p.Candidates, p.Matched, p.Groups)
		}
	}
	return b.String()
}

// Speedup returns the ratio of method a's mean metric to method b's over all
// Qintervals, using simulated time when sim is true and wall time otherwise.
func (r *Report) Speedup(a, b string, sim bool) (float64, error) {
	get := func(label string) (float64, error) {
		for _, s := range r.Series {
			if s.Label != label {
				continue
			}
			sum := 0.0
			for _, p := range s.Points {
				if sim {
					sum += p.SimMs
				} else {
					sum += p.WallMs
				}
			}
			return sum / float64(len(s.Points)), nil
		}
		return 0, fmt.Errorf("bench: no series %q", label)
	}
	va, err := get(a)
	if err != nil {
		return 0, err
	}
	vb, err := get(b)
	if err != nil {
		return 0, err
	}
	if vb == 0 {
		return 0, fmt.Errorf("bench: series %q has zero time", b)
	}
	return va / vb, nil
}

// SortSeries orders the report's series by label for stable output.
func (r *Report) SortSeries() {
	sort.Slice(r.Series, func(i, j int) bool { return r.Series[i].Label < r.Series[j].Label })
}

func queriesOf(e Experiment) int {
	if e.Queries > 0 {
		return e.Queries
	}
	return workload.QueryCount
}

// GeoMeanRatio returns the geometric mean over Qintervals of
// series[a].metric / series[b].metric — a scale-robust "who wins by what
// factor" summary.
func (r *Report) GeoMeanRatio(a, b string, sim bool) (float64, error) {
	var sa, sb *Series
	for i := range r.Series {
		if r.Series[i].Label == a {
			sa = &r.Series[i]
		}
		if r.Series[i].Label == b {
			sb = &r.Series[i]
		}
	}
	if sa == nil || sb == nil {
		return 0, fmt.Errorf("bench: missing series %q or %q", a, b)
	}
	prod := 1.0
	n := 0
	for i := range sa.Points {
		va, vb := sa.Points[i].WallMs, sb.Points[i].WallMs
		if sim {
			va, vb = sa.Points[i].SimMs, sb.Points[i].SimMs
		}
		if va <= 0 || vb <= 0 {
			continue
		}
		prod *= va / vb
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("bench: no comparable points")
	}
	return math.Pow(prod, 1/float64(n)), nil
}
