package bench

import (
	"fielddb/internal/core"
	"fielddb/internal/field"
	"fielddb/internal/storage"
)

// Selectivities are the three query-selectivity regimes of the paper's
// evaluation (relative Qinterval widths): narrow queries where the filter
// step dominates, the mid range where I-Hilbert's run clustering pays off
// most, and wide queries that stress the refinement step's sequential
// throughput. BenchmarkValueRange (bench_test.go) and the checked-in
// BENCH_BASELINE.json are keyed to these values; changing them invalidates
// the recorded baseline.
var Selectivities = []float64{0.01, 0.05, 0.10}

// ValueRangeSpecs returns the index configurations of the value-range
// benchmark suite: the no-index baseline, the per-cell-interval baseline,
// and the paper's proposed method. I-All uses bulk loading here — the suite
// measures the query path, and tuple-by-tuple insertion only slows the
// one-time setup without changing the read-path behavior under test.
func ValueRangeSpecs() []IndexSpec {
	return []IndexSpec{
		{Label: string(core.MethodLinearScan), Build: func(f field.Field, p *storage.Pager) (core.Index, error) {
			return core.BuildLinearScan(f, p)
		}},
		{Label: string(core.MethodIAll), Build: func(f field.Field, p *storage.Pager) (core.Index, error) {
			return core.BuildIAll(f, p, core.IAllOptions{BulkLoad: true})
		}},
		{Label: string(core.MethodIHilbert), Build: func(f field.Field, p *storage.Pager) (core.Index, error) {
			return core.BuildIHilbert(f, p, core.HilbertOptions{})
		}},
	}
}
