package bench

import (
	"fmt"
	"math"
	"time"

	"fielddb/internal/core"
	"fielddb/internal/geom"
	"fielddb/internal/storage"
)

// aggregator is the capability AggregateMeasure drives: both summary-carrying
// index families (Partitioned and the tiled planner) implement it.
type aggregator interface {
	Aggregate(q geom.Interval, maxErr float64) (*core.AggregateResult, error)
}

// AggregateMeasure runs the aggregate tier's exact-vs-approx cost/error
// curves on the fixture terrain: per summary-carrying index family and
// selectivity, one 64-query rotation through the exact pipeline (the
// Aggregate/<label>/.../exact rows, the same filter+refinement cost the
// value-range suite gates) and one through the field summary at unlimited
// tolerance (the .../approx rows, whose err_bound and err_true record the
// mean certified bound and the mean true error of the fraction estimate).
// Every approximate answer is cross-checked against the exact pipeline's
// fraction on the spot — an answer outside its own certified bound fails the
// measurement, so the gated rows double as the tier's correctness sweep. A
// non-positive side selects the fixture default.
func AggregateMeasure(side int) (map[string]Row, error) {
	if side <= 0 {
		side = FixtureSide
	}
	f, err := FixtureTerrain(side, 0)
	if err != nil {
		return nil, err
	}
	vr := f.ValueRange()
	specs := []struct {
		label string
		build func(pager *storage.Pager) (core.Index, error)
	}{
		{"I-Hilbert", func(pager *storage.Pager) (core.Index, error) {
			return core.BuildIHilbert(f, pager, core.HilbertOptions{})
		}},
		{"Tiled-LinearScan/packed", func(pager *storage.Pager) (core.Index, error) {
			return core.BuildTiled(f, pager, core.TiledOptions{
				TileSide: side / 8, Codec: storage.SidecarCodecPacked,
			})
		}},
	}
	rows := map[string]Row{}
	for _, spec := range specs {
		pager := storage.NewPager(storage.NewMemDisk(storage.DefaultPageSize), storage.DefaultDiskModel, 1<<16)
		idx, err := spec.build(pager)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.label, err)
		}
		agg, ok := idx.(aggregator)
		if !ok {
			return nil, fmt.Errorf("%s: no aggregate capability", spec.label)
		}
		for _, sel := range Selectivities {
			queries := FixtureQueries(vr, sel, 64)
			base := fmt.Sprintf("Aggregate/%s/side=%d/sel=%.2f", spec.label, side, sel)

			exactArea := make([]float64, len(queries))
			var exSimNs, exPages float64
			start := time.Now()
			for i, q := range queries {
				res, err := idx.Query(q)
				if err != nil {
					return nil, fmt.Errorf("%s/exact: %w", base, err)
				}
				exactArea[i] = res.MatchedCellArea
				exSimNs += float64(res.IO.SimElapsed.Nanoseconds())
				exPages += float64(res.IO.Reads)
			}
			n := float64(len(queries))
			rows[base+"/exact"] = Row{
				NsOp:    float64(time.Since(start).Nanoseconds()) / n,
				PagesOp: exPages / n,
				SimNsOp: exSimNs / n,
			}

			var apSimNs, apPages, errBound, errTrue float64
			start = time.Now()
			for i, q := range queries {
				res, err := agg.Aggregate(q, math.Inf(1))
				if err != nil {
					return nil, fmt.Errorf("%s/approx: %w", base, err)
				}
				if !res.Approx || res.Fallback {
					return nil, fmt.Errorf("%s/approx: query %d fell back to the exact pipeline", base, i)
				}
				if res.TotalArea <= 0 {
					return nil, fmt.Errorf("%s/approx: query %d has no area denominator", base, i)
				}
				diff := math.Abs(res.Fraction - exactArea[i]/res.TotalArea)
				if diff > res.FractionBound+1e-9 {
					return nil, fmt.Errorf("%s/approx: query %d error %.3g exceeds certified bound %.3g",
						base, i, diff, res.FractionBound)
				}
				errBound += res.FractionBound
				errTrue += diff
				apSimNs += float64(res.IO.SimElapsed.Nanoseconds())
				apPages += float64(res.IO.Reads)
			}
			rows[base+"/approx"] = Row{
				NsOp:     float64(time.Since(start).Nanoseconds()) / n,
				PagesOp:  apPages / n,
				SimNsOp:  apSimNs / n,
				ErrBound: errBound / n,
				ErrTrue:  errTrue / n,
			}
		}
	}
	return rows, nil
}
