package bench

import (
	"fmt"
	"time"

	"fielddb/internal/core"
	"fielddb/internal/storage"
)

// Large-terrain scale-out suite parameters. The terrain is 16× the cells of
// the fixture's 256×256 grid — big enough that tile pruning, not constant
// factors, decides the page counts — and the tile side cuts it into an 8×8
// tile grid.
const (
	// TiledSide is the large terrain's edge in cells.
	TiledSide = 1024
	// TiledQueries is the rotation length per cell; shorter than the solo
	// suite's 64 because each untiled query reads tens of thousands of pages.
	TiledQueries = 16
)

// TiledMeasure runs the deterministic large-terrain suite: the same value
// queries answered by the untiled LinearScan and by the tiled scatter-gather
// planner (LinearScan tiles, packed sidecars), on a side×side terrain
// (TiledSide when side <= 0). Row names carry the side, so rows measured at
// a different scale never silently gate against each other. The suite also
// cross-checks that both methods return identical answer counts per query —
// a benchmark that measured different answers would gate nothing.
func TiledMeasure(side int) (map[string]Row, error) {
	if side <= 0 {
		side = TiledSide
	}
	f, err := FixtureTerrain(side, 0)
	if err != nil {
		return nil, err
	}
	vr := f.ValueRange()
	specs := []struct {
		label string
		build func(pager *storage.Pager) (core.Index, error)
	}{
		{"LinearScan", func(pager *storage.Pager) (core.Index, error) {
			return core.BuildLinearScan(f, pager)
		}},
		{"Tiled-LinearScan/packed", func(pager *storage.Pager) (core.Index, error) {
			return core.BuildTiled(f, pager, core.TiledOptions{
				TileSide: side / 8, Codec: storage.SidecarCodecPacked,
			})
		}},
	}
	rows := map[string]Row{}
	matched := map[string][]int{}
	for _, spec := range specs {
		pager := storage.NewPager(storage.NewMemDisk(storage.DefaultPageSize), storage.DefaultDiskModel, 1<<16)
		idx, err := spec.build(pager)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.label, err)
		}
		for _, sel := range Selectivities {
			queries := FixtureQueries(vr, sel, TiledQueries)
			name := fmt.Sprintf("Tiled/%s/side=%d/sel=%.2f", spec.label, side, sel)
			counts := make([]int, len(queries))
			var simNs, pages float64
			start := time.Now()
			for i, q := range queries {
				res, err := idx.Query(q)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", name, err)
				}
				counts[i] = res.CellsMatched
				simNs += float64(res.IO.SimElapsed.Nanoseconds())
				pages += float64(res.IO.Reads)
			}
			key := fmt.Sprintf("sel=%.2f", sel)
			if prev, ok := matched[key]; ok {
				for i := range counts {
					if counts[i] != prev[i] {
						return nil, fmt.Errorf("%s: query %d matched %d cells, baseline matched %d",
							name, i, counts[i], prev[i])
					}
				}
			} else {
				matched[key] = counts
			}
			n := float64(len(queries))
			rows[name] = Row{
				NsOp:    float64(time.Since(start).Nanoseconds()) / n,
				PagesOp: pages / n,
				SimNsOp: simNs / n,
			}
		}
	}
	return rows, nil
}
