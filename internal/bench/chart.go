package bench

import (
	"fmt"
	"strings"
)

// Chart renders the report as a grouped horizontal bar chart — a terminal
// rendition of the paper's figures. metric selects "wall" (default) or
// "sim" milliseconds.
func (r *Report) Chart(metric string) string {
	value := func(p Point) float64 {
		if metric == "sim" {
			return p.SimMs
		}
		return p.WallMs
	}
	maxVal := 0.0
	maxLabel := 0
	for _, s := range r.Series {
		if len(s.Label) > maxLabel {
			maxLabel = len(s.Label)
		}
		for _, p := range s.Points {
			if v := value(p); v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	const width = 50
	var b strings.Builder
	unit := "wall ms"
	if metric == "sim" {
		unit = "sim ms"
	}
	fmt.Fprintf(&b, "%s — %s (%s per query; bar = %g ms full scale)\n",
		r.Experiment.Name, r.Experiment.Title, unit, maxVal)
	for pi, qi := range r.Experiment.QIntervals {
		fmt.Fprintf(&b, "Qinterval %.3f\n", qi)
		for _, s := range r.Series {
			v := value(s.Points[pi])
			n := int(v / maxVal * width)
			if n > width {
				n = width
			}
			if n < 1 && v > 0 {
				n = 1
			}
			fmt.Fprintf(&b, "  %-*s %s %.2f\n", maxLabel, s.Label, strings.Repeat("#", n), v)
		}
	}
	return b.String()
}
