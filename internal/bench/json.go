package bench

import (
	"encoding/json"

	"fielddb/internal/core"
)

// ReportJSON is the machine-readable form of a Report: the same measured
// points as Table/CSV, but as a stable JSON document so CI and future PRs
// can diff performance without scraping stdout. Experiment is reduced to its
// identifying fields — the dataset and index builders are functions and have
// no serialized form.
type ReportJSON struct {
	Experiment string             `json:"experiment"`
	Title      string             `json:"title"`
	Cells      int                `json:"cells"`
	Queries    int                `json:"queries_per_point"`
	Seed       int64              `json:"seed"`
	BuildMs    map[string]float64 `json:"build_ms"`
	Series     []SeriesJSON       `json:"series"`
}

// SeriesJSON is one method's curve in a ReportJSON.
type SeriesJSON struct {
	Label  string          `json:"label"`
	Stats  core.IndexStats `json:"index_stats"`
	Points []Point         `json:"points"`
}

// JSON converts the report to its machine-readable form.
func (r *Report) JSON() ReportJSON {
	out := ReportJSON{
		Experiment: r.Experiment.Name,
		Title:      r.Experiment.Title,
		Cells:      r.Cells,
		Queries:    queriesOf(r.Experiment),
		Seed:       r.Experiment.Seed,
		BuildMs:    map[string]float64{},
	}
	for label, d := range r.BuildTimes {
		out.BuildMs[label] = d.Seconds() * 1e3
	}
	for _, s := range r.Series {
		out.Series = append(out.Series, SeriesJSON{Label: s.Label, Stats: s.Stats, Points: s.Points})
	}
	return out
}

// MarshalIndent renders any bench result value (ReportJSON, ParallelReport,
// or a slice of either) as indented JSON with a trailing newline.
func MarshalIndent(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
