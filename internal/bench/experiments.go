package bench

import (
	"fmt"

	"fielddb/internal/core"
	"fielddb/internal/field"
	"fielddb/internal/grid"
	"fielddb/internal/sfc"
	"fielddb/internal/storage"
	"fielddb/internal/subfield"
	"fielddb/internal/workload"
)

// Scale selects dataset sizes. The paper's full sizes (512×512 terrain,
// 1024×1024 fractals, ~9,000-triangle TIN, 200 queries per point) take
// minutes per figure; the default scale divides the linear size by 4 and the
// query count by 4 while preserving every qualitative shape.
type Scale struct {
	Full bool
}

func (s Scale) side(full int) int {
	if s.Full {
		return full
	}
	return full / 4
}

func (s Scale) queries() int {
	if s.Full {
		return workload.QueryCount
	}
	return workload.QueryCount / 4
}

func (s Scale) noisePoints() int {
	if s.Full {
		return 4600
	}
	return 1200
}

// Figure8a is the real-terrain experiment: 512×512 DEM, Qinterval 0–0.1,
// LinearScan vs I-All vs I-Hilbert.
func Figure8a(s Scale) Experiment {
	return Experiment{
		Name:  "fig8a",
		Title: "terrain DEM (USGS stand-in), execution time vs Qinterval",
		Dataset: func() (field.Field, error) {
			return FixtureTerrain(s.side(512), 0)
		},
		QIntervals: workload.QIntervalsReal,
		Specs:      SpecsForMethods(core.MethodLinearScan, core.MethodIAll, core.MethodIHilbert),
		Queries:    s.queries(),
		Seed:       81,
	}
}

// Figure8b is the urban-noise experiment: ~9,000-triangle TIN.
func Figure8b(s Scale) Experiment {
	return Experiment{
		Name:  "fig8b",
		Title: "urban noise TIN (Lyon stand-in), execution time vs Qinterval",
		Dataset: func() (field.Field, error) {
			return workload.NoiseTIN(s.noisePoints(), 907)
		},
		QIntervals: workload.QIntervalsReal,
		Specs:      SpecsForMethods(core.MethodLinearScan, core.MethodIAll, core.MethodIHilbert),
		Queries:    s.queries(),
		Seed:       82,
	}
}

// Figure11 is the fractal sweep: one experiment per roughness H over a
// 1024×1024 diamond-square DEM.
func Figure11(h float64, s Scale) Experiment {
	return Experiment{
		Name:  fmt.Sprintf("fig11-H%.1f", h),
		Title: fmt.Sprintf("fractal DEM, H = %.1f, execution time vs Qinterval", h),
		Dataset: func() (field.Field, error) {
			return workload.FractalDEM(s.side(1024), h, 1100+int64(h*10))
		},
		QIntervals: workload.QIntervalsSynthetic,
		Specs:      SpecsForMethods(core.MethodLinearScan, core.MethodIAll, core.MethodIHilbert),
		Queries:    s.queries(),
		Seed:       110 + int64(h*100),
	}
}

// Figure12b is the monotonic-field experiment: w(x, y) = x + y on 512×512.
func Figure12b(s Scale) Experiment {
	return Experiment{
		Name:  "fig12b",
		Title: "monotonic DEM w(x,y) = x + y, execution time vs Qinterval",
		Dataset: func() (field.Field, error) {
			return workload.Monotonic(s.side(512))
		},
		QIntervals: append([]float64{}, 0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06),
		Specs:      SpecsForMethods(core.MethodLinearScan, core.MethodIAll, core.MethodIHilbert),
		Queries:    s.queries(),
		Seed:       120,
	}
}

// AblationCurves compares the space-filling curve driving the
// linearization: Hilbert vs Z-order vs Gray-code (refs [6, 7, 13] of the
// paper claim Hilbert clusters best).
func AblationCurves(s Scale) Experiment {
	specs := make([]IndexSpec, 0, 3)
	for _, name := range []string{"hilbert", "zorder", "gray"} {
		name := name
		specs = append(specs, IndexSpec{
			Label: "I-" + name,
			Build: func(f field.Field, p *storage.Pager) (core.Index, error) {
				curve, err := sfc.New(name, 16, 2)
				if err != nil {
					return nil, err
				}
				return core.BuildIHilbert(f, p, core.HilbertOptions{Curve: curve})
			},
		})
	}
	return Experiment{
		Name:  "ablation-curves",
		Title: "I-Hilbert with Hilbert vs Z-order vs Gray-code linearization",
		Dataset: func() (field.Field, error) {
			return FixtureTerrain(s.side(512), 0)
		},
		QIntervals: workload.QIntervalsReal,
		Specs:      specs,
		Queries:    s.queries(),
		Seed:       130,
	}
}

// AblationQuadThreshold sweeps the Interval Quadtree threshold and compares
// against I-Hilbert — the paper's motivation: no fixed threshold is best
// everywhere, while the cost-based grouping needs no tuning.
func AblationQuadThreshold(s Scale) Experiment {
	specs := []IndexSpec{
		SpecsForMethods(core.MethodIHilbert)[0],
	}
	for _, frac := range []float64{1.0 / 4, 1.0 / 16, 1.0 / 64} {
		frac := frac
		specs = append(specs, IndexSpec{
			Label: fmt.Sprintf("I-Quad/%g", 1/frac),
			Build: func(f field.Field, p *storage.Pager) (core.Index, error) {
				vr := f.ValueRange()
				return core.BuildIQuad(f, p, core.ThresholdOptions{MaxSize: vr.Length()*frac + 1})
			},
		})
	}
	return Experiment{
		Name:  "ablation-quad",
		Title: "Interval Quadtree threshold sweep vs I-Hilbert",
		Dataset: func() (field.Field, error) {
			return FixtureTerrain(s.side(512), 0)
		},
		QIntervals: workload.QIntervalsReal,
		Specs:      specs,
		Queries:    s.queries(),
		Seed:       140,
	}
}

// AblationCostEpsilon sweeps the cost model's additive constant (the
// query-length term of P = L + q).
func AblationCostEpsilon(s Scale) Experiment {
	var specs []IndexSpec
	for _, eps := range []float64{0.25, 1, 4, 16} {
		eps := eps
		specs = append(specs, IndexSpec{
			Label: fmt.Sprintf("I-Hilbert/eps=%g", eps),
			Build: func(f field.Field, p *storage.Pager) (core.Index, error) {
				return core.BuildIHilbert(f, p, core.HilbertOptions{
					Cost: subfield.CostModel{Epsilon: eps},
				})
			},
		})
	}
	return Experiment{
		Name:  "ablation-eps",
		Title: "cost-model constant sweep (P = L + q)",
		Dataset: func() (field.Field, error) {
			return FixtureTerrain(s.side(512), 0)
		},
		QIntervals: workload.QIntervalsReal,
		Specs:      specs,
		Queries:    s.queries(),
		Seed:       150,
	}
}

// RelatedIPIndex compares the paper's related work (§2.3) — one IP-index
// per DEM row, continuity along one axis only — against I-Hilbert and
// LinearScan on the terrain dataset.
func RelatedIPIndex(s Scale) Experiment {
	ipSpec := IndexSpec{
		Label: string(core.MethodIPRow),
		Build: func(f field.Field, p *storage.Pager) (core.Index, error) {
			d, ok := f.(*grid.DEM)
			if !ok {
				return nil, fmt.Errorf("bench: IP-Row requires a DEM, got %T", f)
			}
			return core.BuildIPRow(d, p)
		},
	}
	itSpec := IndexSpec{
		Label: string(core.MethodIntervalTree),
		Build: func(f field.Field, p *storage.Pager) (core.Index, error) {
			return core.BuildITree(f, p)
		},
	}
	specs := append(SpecsForMethods(core.MethodLinearScan, core.MethodIHilbert), itSpec)
	return Experiment{
		Name:  "related-ipindex",
		Title: "related work: row-wise IP-index and main-memory interval tree vs I-Hilbert",
		Dataset: func() (field.Field, error) {
			return FixtureTerrain(s.side(512), 0)
		},
		QIntervals: workload.QIntervalsReal,
		Specs:      append(specs, ipSpec),
		Queries:    s.queries(),
		Seed:       160,
	}
}

// ExtensionAuto compares the adaptive planner (histogram-driven choice
// between subfield filtering and sequential scan) against both fixed
// strategies, over a Qinterval grid that reaches into the high-selectivity
// regime where LinearScan wins.
func ExtensionAuto(s Scale) Experiment {
	autoSpec := IndexSpec{
		Label: string(core.MethodAuto),
		Build: func(f field.Field, p *storage.Pager) (core.Index, error) {
			return core.BuildAuto(f, p, core.AutoOptions{})
		},
	}
	return Experiment{
		Name:  "extension-auto",
		Title: "adaptive planner (I-Auto) vs fixed strategies, wide Qinterval sweep",
		Dataset: func() (field.Field, error) {
			return workload.FractalDEM(s.side(1024)/2, 0.3, 1103)
		},
		QIntervals: []float64{0, 0.05, 0.2, 0.4, 0.6, 0.8},
		Specs:      append(SpecsForMethods(core.MethodLinearScan, core.MethodIHilbert), autoSpec),
		Queries:    s.queries(),
		Seed:       170,
	}
}

// All returns every experiment of the evaluation at the given scale, in
// paper order.
func All(s Scale) []Experiment {
	out := []Experiment{Figure8a(s), Figure8b(s)}
	for _, h := range workload.HSweep {
		out = append(out, Figure11(h, s))
	}
	out = append(out, Figure12b(s), AblationCurves(s), AblationQuadThreshold(s),
		AblationCostEpsilon(s), RelatedIPIndex(s), ExtensionAuto(s))
	return out
}

// ByName returns the experiment with the given name at the given scale.
func ByName(name string, s Scale) (Experiment, error) {
	for _, e := range All(s) {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", name)
}
