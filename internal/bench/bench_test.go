package bench

import (
	"strings"
	"testing"

	"fielddb/internal/core"
	"fielddb/internal/field"
	"fielddb/internal/geom"
	"fielddb/internal/grid"
	"fielddb/internal/storage"
)

// tinyScale builds very small experiments for unit testing.
func tinyExperiment(t *testing.T) Experiment {
	t.Helper()
	return Experiment{
		Name:  "tiny",
		Title: "unit-test experiment",
		Dataset: func() (field.Field, error) {
			return grid.FromFunc(geom.Pt(0, 0), 1, 1, 16, 16, func(x, y float64) float64 {
				return x + 2*y
			})
		},
		QIntervals: []float64{0, 0.05, 0.1},
		Specs:      SpecsForMethods(core.MethodLinearScan, core.MethodIAll, core.MethodIHilbert),
		Queries:    10,
		Seed:       7,
	}
}

func TestRunProducesFullGrid(t *testing.T) {
	rep, err := Run(tinyExperiment(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells != 256 {
		t.Fatalf("cells = %d", rep.Cells)
	}
	if len(rep.Series) != 3 {
		t.Fatalf("series = %d", len(rep.Series))
	}
	for _, s := range rep.Series {
		if len(s.Points) != 3 {
			t.Fatalf("%s: %d points", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.WallMs < 0 || p.SimMs < 0 || p.Pages <= 0 {
				t.Fatalf("%s: implausible point %+v", s.Label, p)
			}
		}
		if rep.BuildTimes[s.Label] <= 0 {
			t.Fatalf("%s: no build time", s.Label)
		}
	}
}

func TestReportRendering(t *testing.T) {
	rep, err := Run(tinyExperiment(t))
	if err != nil {
		t.Fatal(err)
	}
	table := rep.Table()
	for _, want := range []string{"tiny", "LinearScan", "I-All", "I-Hilbert", "Qinterval", "wall ms"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	csv := rep.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	// header + 3 methods × 3 Qintervals
	if len(lines) != 1+9 {
		t.Fatalf("csv has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "experiment,method,") {
		t.Fatalf("csv header %q", lines[0])
	}
}

func TestSpeedupAndGeoMean(t *testing.T) {
	rep, err := Run(tinyExperiment(t))
	if err != nil {
		t.Fatal(err)
	}
	s, err := rep.Speedup("LinearScan", "I-Hilbert", true)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Fatalf("speedup = %g", s)
	}
	if _, err := rep.Speedup("nope", "I-Hilbert", true); err == nil {
		t.Fatal("unknown series accepted")
	}
	g, err := rep.GeoMeanRatio("LinearScan", "I-Hilbert", true)
	if err != nil {
		t.Fatal(err)
	}
	if g <= 0 {
		t.Fatalf("geomean = %g", g)
	}
	if _, err := rep.GeoMeanRatio("nope", "I-Hilbert", false); err == nil {
		t.Fatal("unknown series accepted")
	}
}

func TestExperimentRegistry(t *testing.T) {
	s := Scale{}
	all := All(s)
	if len(all) != 12 {
		t.Fatalf("registry has %d experiments", len(all))
	}
	names := map[string]bool{}
	for _, e := range all {
		if names[e.Name] {
			t.Fatalf("duplicate experiment %q", e.Name)
		}
		names[e.Name] = true
		if e.Dataset == nil || len(e.QIntervals) == 0 || len(e.Specs) == 0 {
			t.Fatalf("experiment %q incomplete", e.Name)
		}
	}
	for _, want := range []string{"fig8a", "fig8b", "fig11-H0.1", "fig11-H0.9", "fig12b", "ablation-curves", "ablation-quad", "ablation-eps", "related-ipindex", "extension-auto"} {
		if !names[want] {
			t.Fatalf("missing experiment %q", want)
		}
	}
	if _, err := ByName("fig8a", s); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("bogus", s); err == nil {
		t.Fatal("bogus experiment found")
	}
}

func TestScaleArithmetic(t *testing.T) {
	s := Scale{}
	if s.side(512) != 128 || s.queries() != 50 || s.noisePoints() != 1200 {
		t.Fatalf("default scale: %d %d %d", s.side(512), s.queries(), s.noisePoints())
	}
	f := Scale{Full: true}
	if f.side(512) != 512 || f.queries() != 200 || f.noisePoints() != 4600 {
		t.Fatalf("full scale: %d %d %d", f.side(512), f.queries(), f.noisePoints())
	}
}

func TestFigure12bShape(t *testing.T) {
	// A scaled-down Fig 12b run must preserve the paper's headline shape:
	// I-Hilbert is the fastest method on monotonic data.
	exp := Figure12b(Scale{})
	exp.Dataset = func() (field.Field, error) {
		return grid.FromFunc(geom.Pt(0, 0), 1, 1, 64, 64, func(x, y float64) float64 { return x + y })
	}
	exp.Queries = 20
	rep, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	g, err := rep.GeoMeanRatio("LinearScan", "I-Hilbert", true)
	if err != nil {
		t.Fatal(err)
	}
	if g <= 1 {
		t.Fatalf("I-Hilbert not ahead on monotonic data (ratio %g)", g)
	}
}

func TestSpecsForMethodsThresholds(t *testing.T) {
	specs := SpecsForMethods(core.MethodIQuad, core.MethodIThresh)
	if len(specs) != 2 {
		t.Fatalf("specs = %d", len(specs))
	}
	f, _ := grid.FromFunc(geom.Pt(0, 0), 1, 1, 8, 8, func(x, y float64) float64 { return x })
	for _, spec := range specs {
		pager := storage.NewPager(storage.NewMemDisk(storage.DefaultPageSize), storage.DefaultDiskModel, 0)
		idx, err := spec.Build(f, pager)
		if err != nil {
			t.Fatalf("%s: %v", spec.Label, err)
		}
		if idx.Stats().Cells != 64 {
			t.Fatalf("%s: cells %d", spec.Label, idx.Stats().Cells)
		}
	}
}

func TestSortSeries(t *testing.T) {
	rep := &Report{Series: []Series{{Label: "b"}, {Label: "a"}}}
	rep.SortSeries()
	if rep.Series[0].Label != "a" {
		t.Fatal("not sorted")
	}
}

func TestChart(t *testing.T) {
	rep, err := Run(tinyExperiment(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"wall", "sim"} {
		c := rep.Chart(metric)
		if !strings.Contains(c, "Qinterval 0.050") || !strings.Contains(c, "#") {
			t.Fatalf("chart missing content:\n%s", c)
		}
		for _, s := range rep.Series {
			if !strings.Contains(c, s.Label) {
				t.Fatalf("chart missing series %q", s.Label)
			}
		}
	}
	// Degenerate all-zero report doesn't divide by zero.
	empty := &Report{Experiment: Experiment{QIntervals: []float64{0}}, Series: []Series{{Label: "x", Points: []Point{{}}}}}
	_ = empty.Chart("wall")
}
