package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"fielddb/internal/core"
	"fielddb/internal/field"
	"fielddb/internal/geom"
	"fielddb/internal/storage"
)

// Update-load suite parameters. Like the query rotations, these are fixed so
// every simulated-disk metric is exactly reproducible run to run.
const (
	// UpdateBatchSize is the number of sample updates per committed batch.
	UpdateBatchSize = 16
	// UpdateBatches is how many batches the pure update-cost rows commit.
	UpdateBatches = 32
	// updateInterleave is the mixed-load cadence: one update batch commits
	// after every updateInterleave queries of the rotation.
	updateInterleave = 8
)

// updateBatch draws one deterministic batch: random samples moved to random
// values inside the field's original range (so the workload exercises cell
// re-encoding and index maintenance without constantly regrouping on range
// explosions — occasional drift-triggered re-cuts still happen and are
// themselves deterministic).
func updateBatch(mf field.Mutable, vr geom.Interval, rng *rand.Rand) []core.SampleUpdate {
	updates := make([]core.SampleUpdate, UpdateBatchSize)
	for i := range updates {
		updates[i] = core.SampleUpdate{
			Sample: rng.Intn(mf.NumSamples()),
			Value:  vr.Lo + rng.Float64()*vr.Length(),
		}
	}
	return updates
}

// UpdateLoadMeasure runs the deterministic live-update suite on the same
// 256×256 terrain as ValueRangeMeasure, for every index spec that supports
// live updates. Two kinds of rows come back:
//
//   - UpdateLoad/<label>/batch=N: the cost of committing update batches on an
//     otherwise idle index. PagesOp counts pages written per batch (copy-on-
//     write overlays plus persisted index nodes), SimNsOp is the staging-read
//     time per batch on the simulated disk, and QPSSim is batches per
//     simulated-disk second.
//   - UpdateLoad/<label>/read/sel=S: the per-query cost of the standard
//     64-query rotation while update batches commit every few queries —
//     the reader-visible price of MVCC (overlay lookups, refreshed trees,
//     epoch bookkeeping). QPSSim is queries per simulated-disk second of
//     reader time.
//
// Everything is single-threaded and seeded; the rows gate regressions the
// same way the solo and concurrent suites do.
func UpdateLoadMeasure() (map[string]Row, error) {
	ctx := context.Background()
	rows := map[string]Row{}
	for _, spec := range ValueRangeSpecs() {
		// Pure update-cost rows. A fresh terrain per cell: batches mutate
		// the field, and each row must start from the same state.
		f, err := FixtureTerrain(0, 0)
		if err != nil {
			return nil, err
		}
		pager := storage.NewPager(storage.NewMemDisk(storage.DefaultPageSize), storage.DefaultDiskModel, 1<<16)
		idx, err := spec.Build(f, pager)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Label, err)
		}
		up, ok := idx.(core.Updater)
		if !ok {
			continue
		}
		vr := f.ValueRange()
		rng := rand.New(rand.NewSource(FixtureSeed))
		name := fmt.Sprintf("UpdateLoad/%s/batch=%d", spec.Label, UpdateBatchSize)
		var pages float64
		var sim time.Duration
		start := time.Now()
		for b := 0; b < UpdateBatches; b++ {
			res, err := up.ApplyUpdates(ctx, f, updateBatch(f, vr, rng))
			if err != nil {
				return nil, fmt.Errorf("%s batch %d: %w", name, b, err)
			}
			pages += float64(res.PagesWritten + res.IndexPagesWritten)
			sim += res.IO.SimElapsed
		}
		n := float64(UpdateBatches)
		row := Row{
			NsOp:    float64(time.Since(start).Nanoseconds()) / n,
			PagesOp: pages / n,
			SimNsOp: float64(sim.Nanoseconds()) / n,
		}
		if sim > 0 {
			row.QPSSim = n / sim.Seconds()
		}
		rows[name] = row

		// Reader-under-update rows: the rotation interleaved with batches.
		for _, sel := range Selectivities {
			f, err := FixtureTerrain(0, 0)
			if err != nil {
				return nil, err
			}
			pager := storage.NewPager(storage.NewMemDisk(storage.DefaultPageSize), storage.DefaultDiskModel, 1<<16)
			idx, err := spec.Build(f, pager)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", spec.Label, err)
			}
			up := idx.(core.Updater)
			vr := f.ValueRange()
			rng := rand.New(rand.NewSource(FixtureSeed + int64(sel*1e6)))
			queries := FixtureQueries(vr, sel, 64)
			name := fmt.Sprintf("UpdateLoad/%s/read/sel=%.2f", spec.Label, sel)
			var pages float64
			var sim time.Duration
			start := time.Now()
			for i, q := range queries {
				if i%updateInterleave == 0 {
					if _, err := up.ApplyUpdates(ctx, f, updateBatch(f, vr, rng)); err != nil {
						return nil, fmt.Errorf("%s batch at query %d: %w", name, i, err)
					}
				}
				res, err := idx.Query(q)
				if err != nil {
					return nil, fmt.Errorf("%s query %d: %w", name, i, err)
				}
				pages += float64(res.IO.Reads)
				sim += res.IO.SimElapsed
			}
			n := float64(len(queries))
			row := Row{
				NsOp:    float64(time.Since(start).Nanoseconds()) / n,
				PagesOp: pages / n,
				SimNsOp: float64(sim.Nanoseconds()) / n,
			}
			if sim > 0 {
				row.QPSSim = n / sim.Seconds()
			}
			rows[name] = row
		}
	}
	return rows, nil
}
