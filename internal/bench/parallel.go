package bench

import (
	"fmt"
	"strings"
	"time"

	"fielddb/internal/core"
	"fielddb/internal/geom"
	"fielddb/internal/storage"
	"fielddb/internal/workload"
)

// ParallelPoint is one row of the refinement-parallelism table.
type ParallelPoint struct {
	Workers int
	WallMs  float64 // avg wall-clock ms per query
	Speedup float64 // vs Workers == 1
	Reads   int     // per-query page reads (identical across rows)
}

// ParallelReport is the outcome of ParallelSpeedup.
type ParallelReport struct {
	Side    int
	Cells   int
	Queries int
	Points  []ParallelPoint
}

// ParallelSpeedup measures the wall-clock effect of the refinement worker
// pool: it builds one I-Hilbert index over a side×side terrain, then runs
// the same refinement-heavy workload (wide Qinterval, so many subfield runs
// per query) at 1, 2, 4, ... up to maxWorkers workers. Answers are checked
// to be identical across worker counts — parallelism must change only the
// wall clock, never the result or the simulated I/O.
func ParallelSpeedup(side int, maxWorkers, queries int, seed int64) (*ParallelReport, error) {
	if side <= 0 {
		side = 256
	}
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	if queries <= 0 {
		queries = 32
	}
	f, err := FixtureTerrain(side, seed)
	if err != nil {
		return nil, fmt.Errorf("bench parallel: terrain: %w", err)
	}
	pager := storage.NewPager(storage.NewMemDisk(storage.DefaultPageSize), storage.DefaultDiskModel, 1<<16)
	idx, err := core.BuildIHilbert(f, pager, core.HilbertOptions{Workers: maxWorkers})
	if err != nil {
		return nil, fmt.Errorf("bench parallel: build: %w", err)
	}
	// Wide queries (Qinterval 0.25) select many subfields, so the
	// refinement step dominates and fans out across many cell runs.
	qs := workload.Queries(f.ValueRange(), 0.25, queries, seed)

	rep := &ParallelReport{Side: side, Cells: f.NumCells(), Queries: len(qs)}
	var baseline []*core.Result
	var baseMs float64
	for w := 1; w <= maxWorkers; w *= 2 {
		idx.SetWorkers(w)
		results := make([]*core.Result, len(qs))
		start := time.Now()
		for i, q := range qs {
			res, err := idx.Query(q)
			if err != nil {
				return nil, fmt.Errorf("bench parallel: workers=%d query %v: %w", w, q, err)
			}
			results[i] = res
		}
		wallMs := time.Since(start).Seconds() * 1e3 / float64(len(qs))
		reads := 0
		for i, res := range results {
			reads += res.IO.Reads
			if baseline != nil {
				if err := sameAnswer(baseline[i], res); err != nil {
					return nil, fmt.Errorf("bench parallel: workers=%d query %v: %w", w, qs[i], err)
				}
			}
		}
		if baseline == nil {
			baseline = results
			baseMs = wallMs
		}
		rep.Points = append(rep.Points, ParallelPoint{
			Workers: w,
			WallMs:  wallMs,
			Speedup: baseMs / wallMs,
			Reads:   reads / len(qs),
		})
	}
	return rep, nil
}

// sameAnswer checks that two results of the same query are identical in
// answer geometry, area, counters, and per-query I/O accounting.
func sameAnswer(a, b *core.Result) error {
	if a.IO != b.IO {
		return fmt.Errorf("IO differs: %+v vs %+v", a.IO, b.IO)
	}
	if a.Area != b.Area || a.CellsMatched != b.CellsMatched || a.CellsFetched != b.CellsFetched {
		return fmt.Errorf("answer differs: area %v/%v matched %d/%d fetched %d/%d",
			a.Area, b.Area, a.CellsMatched, b.CellsMatched, a.CellsFetched, b.CellsFetched)
	}
	if len(a.Regions) != len(b.Regions) {
		return fmt.Errorf("region count differs: %d vs %d", len(a.Regions), len(b.Regions))
	}
	for i := range a.Regions {
		if !samePolygon(a.Regions[i], b.Regions[i]) {
			return fmt.Errorf("region %d differs", i)
		}
	}
	return nil
}

func samePolygon(a, b geom.Polygon) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Table renders the speedup report.
func (r *ParallelReport) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "refinement parallelism — %d×%d terrain (%d cells), %d wide queries (Qinterval 0.25)\n",
		r.Side, r.Side, r.Cells, r.Queries)
	fmt.Fprintf(&sb, "%8s %12s %10s %12s\n", "workers", "wall ms/qry", "speedup", "reads/qry")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%8d %12.3f %9.2fx %12d\n", p.Workers, p.WallMs, p.Speedup, p.Reads)
	}
	return sb.String()
}
