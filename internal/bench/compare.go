package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"fielddb/internal/storage"
)

// Row is one benchmark measurement in the BENCH_BASELINE.json schema.
// PagesOp and SimNsOp come off the simulated disk clock and are exactly
// reproducible (the workload is a fixed 64-query rotation); NsOp is wall
// clock and carries host noise, so regression gating compares only the
// simulated metrics.
type Row struct {
	NsOp     float64 `json:"ns_op"`
	PagesOp  float64 `json:"pages_op"`
	SimNsOp  float64 `json:"simns_op"`
	BOp      float64 `json:"b_op,omitempty"`
	AllocsOp float64 `json:"allocs_op,omitempty"`
	// QPSSim is queries per simulated-disk second — the throughput metric of
	// the concurrent (batched) rows, where cost-per-query hides how much
	// coalescing the shared scan achieved. Unlike the cost metrics it is
	// higher-is-better, and the gate fails when it drops.
	QPSSim float64 `json:"qps_sim,omitempty"`
	// QPS and the latency quantiles are the wall-clock outputs of the
	// serving-tier load rows (ServeLoad/...): end-to-end HTTP throughput and
	// per-request latency. Like NsOp they measure the host and are recorded
	// for trend reading only — the regression gate never compares them.
	QPS   float64 `json:"qps,omitempty"`
	P50Ns float64 `json:"p50_ns,omitempty"`
	P95Ns float64 `json:"p95_ns,omitempty"`
	P99Ns float64 `json:"p99_ns,omitempty"`
	// ErrBound and ErrTrue record the aggregate tier's error curve: the mean
	// certified fraction bound the summary promises and the mean true error
	// the answers actually made (always ≤ ErrBound, cross-checked inside the
	// measurement). Deterministic like the simulated metrics, but recorded
	// for the error/cost trade-off narrative, not gated.
	ErrBound float64 `json:"err_bound,omitempty"`
	ErrTrue  float64 `json:"err_true,omitempty"`
}

// ValueRangeMeasure runs the deterministic value-range suite — the exact
// dataset, index specs, worker counts, selectivities, seeds, and
// sub-benchmark names of BenchmarkValueRange — for one full 64-query
// rotation per cell and returns the per-cell rows. Because every metric that
// matters is read off the simulated disk, one rotation reproduces the
// pages_op and simns_op of any -benchtime that is a multiple of 64x.
func ValueRangeMeasure() (map[string]Row, error) {
	f, err := FixtureTerrain(0, 0)
	if err != nil {
		return nil, err
	}
	vr := f.ValueRange()
	rows := map[string]Row{}
	for _, spec := range ValueRangeSpecs() {
		pager := storage.NewPager(storage.NewMemDisk(storage.DefaultPageSize), storage.DefaultDiskModel, 1<<16)
		idx, err := spec.Build(f, pager)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Label, err)
		}
		workerCounts := []int{1}
		if _, ok := idx.(interface{ SetWorkers(int) }); ok {
			workerCounts = append(workerCounts, 4)
		}
		for _, workers := range workerCounts {
			if w, ok := idx.(interface{ SetWorkers(int) }); ok {
				w.SetWorkers(workers)
			}
			for _, sel := range Selectivities {
				queries := FixtureQueries(vr, sel, 64)
				name := fmt.Sprintf("%s/sel=%.2f", spec.Label, sel)
				if workers > 1 {
					name += fmt.Sprintf("/workers=%d", workers)
				}
				var simNs, pages float64
				start := time.Now()
				for _, q := range queries {
					res, err := idx.Query(q)
					if err != nil {
						return nil, fmt.Errorf("%s: %w", name, err)
					}
					simNs += float64(res.IO.SimElapsed.Nanoseconds())
					pages += float64(res.IO.Reads)
				}
				n := float64(len(queries))
				rows[name] = Row{
					NsOp:    float64(time.Since(start).Nanoseconds()) / n,
					PagesOp: pages / n,
					SimNsOp: simNs / n,
				}
			}
		}
	}
	return rows, nil
}

// baselineSections is the precedence order for picking rows out of a
// multi-section BENCH_BASELINE.json when no section is named: newest
// recorded state first.
var baselineSections = []string{"post_approx", "post_wire", "post_serve", "post_tiled", "post_mvcc", "post_batch", "post_sidecar", "post_obs", "post", "pre"}

// LoadRows reads benchmark rows from path. Two layouts are accepted: a flat
// {name: row} map (what -bench-json writes) and the checked-in
// BENCH_BASELINE.json layout of named sections (plus "_comment"/"env"
// metadata, which is skipped). For sectioned files, section picks the rows;
// empty means the newest known section. The chosen section name is returned
// ("" for flat files).
func LoadRows(path, section string) (map[string]Row, string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	delete(top, "_comment")
	delete(top, "env")
	if section != "" {
		msg, ok := top[section]
		if !ok {
			return nil, "", fmt.Errorf("%s: no section %q", path, section)
		}
		rows, err := decodeRows(msg)
		if err != nil {
			return nil, "", fmt.Errorf("%s[%s]: %w", path, section, err)
		}
		return rows, section, nil
	}
	// Flat layout: every remaining value is a row.
	flat := map[string]Row{}
	isFlat := len(top) > 0
	for name, msg := range top {
		row, err := decodeRow(msg)
		if err != nil {
			isFlat = false
			break
		}
		flat[name] = row
	}
	if isFlat {
		return flat, "", nil
	}
	for _, s := range baselineSections {
		if msg, ok := top[s]; ok {
			rows, err := decodeRows(msg)
			if err != nil {
				return nil, "", fmt.Errorf("%s[%s]: %w", path, s, err)
			}
			return rows, s, nil
		}
	}
	return nil, "", fmt.Errorf("%s: no recognizable benchmark rows", path)
}

// decodeRow parses one row strictly: a section object (whose keys are
// benchmark names, not row fields) fails, which is how LoadRows tells the
// two layouts apart.
func decodeRow(msg json.RawMessage) (Row, error) {
	dec := json.NewDecoder(bytes.NewReader(msg))
	dec.DisallowUnknownFields()
	var row Row
	err := dec.Decode(&row)
	return row, err
}

func decodeRows(msg json.RawMessage) (map[string]Row, error) {
	var rows map[string]Row
	if err := json.Unmarshal(msg, &rows); err != nil {
		return nil, err
	}
	return rows, nil
}

// CompareRows gates new measurements against old ones: for every row of old,
// the new pages_op and simns_op may not exceed the old value by more than
// tol (relative). It returns one line per violation, empty when the new
// numbers are clean. Wall-clock and allocation metrics are not gated — they
// measure the host, not the engine.
func CompareRows(oldRows, newRows map[string]Row, tol float64) []string {
	names := make([]string, 0, len(oldRows))
	for name := range oldRows {
		names = append(names, name)
	}
	sort.Strings(names)
	var fails []string
	for _, name := range names {
		nr, ok := newRows[name]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: missing from new measurements", name))
			continue
		}
		or := oldRows[name]
		if nr.PagesOp > or.PagesOp*(1+tol) {
			fails = append(fails, fmt.Sprintf("%s: pages/op regressed %.1f -> %.1f (+%.1f%%)",
				name, or.PagesOp, nr.PagesOp, 100*(nr.PagesOp/or.PagesOp-1)))
		}
		if nr.SimNsOp > or.SimNsOp*(1+tol) {
			fails = append(fails, fmt.Sprintf("%s: simns/op regressed %.0f -> %.0f (+%.1f%%)",
				name, or.SimNsOp, nr.SimNsOp, 100*(nr.SimNsOp/or.SimNsOp-1)))
		}
		// Throughput is higher-is-better: gate drops, not rises.
		if or.QPSSim > 0 && nr.QPSSim < or.QPSSim*(1-tol) {
			fails = append(fails, fmt.Sprintf("%s: qps_sim regressed %.1f -> %.1f (-%.1f%%)",
				name, or.QPSSim, nr.QPSSim, 100*(1-nr.QPSSim/or.QPSSim)))
		}
	}
	return fails
}
