package bench

import (
	"fmt"
	"strings"
	"testing"
)

// TestTiledMeasureSmoke gates the large-terrain suite's plumbing without the
// full 1024×1024 measurement: a reduced side exercises the same specs, row
// naming, and the built-in answer cross-check. Under -short (the make check
// smoke) the terrain shrinks again, so the gate costs CI about a second.
func TestTiledMeasureSmoke(t *testing.T) {
	side := 512
	if testing.Short() {
		side = 256
	}
	rows, err := TiledMeasure(side)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(Selectivities); len(rows) != want {
		t.Fatalf("TiledMeasure(%d) returned %d rows, want %d", side, len(rows), want)
	}
	for _, sel := range Selectivities {
		flat, ok := rows[fmt.Sprintf("Tiled/LinearScan/side=%d/sel=%.2f", side, sel)]
		if !ok {
			t.Fatalf("missing untiled row at sel=%.2f; have %v", sel, rowNames(rows))
		}
		tiled, ok := rows[fmt.Sprintf("Tiled/Tiled-LinearScan/packed/side=%d/sel=%.2f", side, sel)]
		if !ok {
			t.Fatalf("missing tiled row at sel=%.2f; have %v", sel, rowNames(rows))
		}
		// The planner may only save pages over the untiled scan; a tiled row
		// that reads more would mean pruning or the packed codec regressed.
		if tiled.PagesOp > flat.PagesOp {
			t.Errorf("sel=%.2f: tiled reads %.1f pages/op, untiled %.1f", sel, tiled.PagesOp, flat.PagesOp)
		}
		if tiled.PagesOp <= 0 || tiled.SimNsOp <= 0 {
			t.Errorf("sel=%.2f: tiled row has empty metrics: %+v", sel, tiled)
		}
	}
}

func rowNames(rows map[string]Row) string {
	names := make([]string, 0, len(rows))
	for name := range rows {
		names = append(names, name)
	}
	return strings.Join(names, ", ")
}
