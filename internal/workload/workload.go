// Package workload builds the datasets and query workloads of the paper's
// evaluation (§4): the real-terrain and urban-noise stand-ins, the fractal
// DEM sweep over the roughness constant H, the monotonic field, and the
// 200-query random interval workloads per Qinterval.
//
// Substitutions (documented in DESIGN.md): the USGS Roseburg DEM is replaced
// by a deterministic diamond-square terrain of identical size and model, and
// the proprietary Lyon noise TIN by a synthetic noise surface (ambient base
// plus road-line and point sources) triangulated to ~9,000 cells. Both
// preserve the properties the experiments exercise.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"fielddb/internal/field"
	"fielddb/internal/fractal"
	"fielddb/internal/geom"
	"fielddb/internal/grid"
	"fielddb/internal/tin"
)

// Terrain builds the stand-in for the paper's 512×512 USGS terrain DEM
// (Fig 8a): a diamond-square fractal with mid-high roughness, elevations
// scaled to a plausible 200–1400 m range. side must be a power of two.
func Terrain(side int, seed int64) (*grid.DEM, error) {
	heights, err := fractal.DiamondSquare(side, 0.7, seed)
	if err != nil {
		return nil, err
	}
	fractal.Normalize(heights, 200, 1400)
	return grid.New(geom.Pt(0, 0), 30, 30, side, side, heights) // 30 m posts, USGS-style
}

// Terrain512 is the Fig 8a dataset at full size (262,144 cells).
func Terrain512() (*grid.DEM, error) { return Terrain(512, 4217) }

// FractalDEM builds the Fig 11 synthetic dataset: a side×side diamond-square
// DEM with roughness H, values normalized to [0, 1] as the paper normalizes
// the value space.
func FractalDEM(side int, h float64, seed int64) (*grid.DEM, error) {
	heights, err := fractal.DiamondSquare(side, h, seed)
	if err != nil {
		return nil, err
	}
	fractal.Normalize(heights, 0, 1)
	return grid.New(geom.Pt(0, 0), 1, 1, side, side, heights)
}

// Monotonic builds the Fig 12 dataset: w(x, y) = x + y over side×side cells.
func Monotonic(side int) (*grid.DEM, error) {
	return grid.FromFunc(geom.Pt(0, 0), 1, 1, side, side, func(x, y float64) float64 {
		return x + y
	})
}

// Monotonic512 is the Fig 12 dataset at full size.
func Monotonic512() (*grid.DEM, error) { return Monotonic(512) }

// NoiseTIN builds the stand-in for the paper's Lyon urban noise TIN
// (Fig 8b): nPoints sample points over a 4×3 km area with an ambient level,
// three road corridors (line sources) and a handful of point sources, in dB.
// The default of ~4,600 points yields roughly 9,000 triangles.
func NoiseTIN(nPoints int, seed int64) (*tin.TIN, error) {
	if nPoints < 10 {
		return nil, fmt.Errorf("workload: need at least 10 noise samples, got %d", nPoints)
	}
	rng := rand.New(rand.NewSource(seed))
	const width, height = 4000.0, 3000.0
	type segment struct{ a, b geom.Point }
	roads := []segment{
		{geom.Pt(0, 600), geom.Pt(width, 900)},
		{geom.Pt(500, 0), geom.Pt(700, height)},
		{geom.Pt(0, 2400), geom.Pt(width, 1800)},
	}
	type src struct {
		p  geom.Point
		db float64
	}
	sources := []src{
		{geom.Pt(800, 700), 95},
		{geom.Pt(2900, 2100), 90},
		{geom.Pt(2000, 400), 88},
		{geom.Pt(3500, 800), 92},
	}
	distSeg := func(p geom.Point, s segment) float64 {
		d := s.b.Sub(s.a)
		l2 := d.Dot(d)
		if l2 == 0 {
			return p.Dist(s.a)
		}
		t := p.Sub(s.a).Dot(d) / l2
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
		return p.Dist(s.a.Add(d.Scale(t)))
	}
	level := func(p geom.Point) float64 {
		// Energetic sum of ambient + attenuated sources, expressed in dB.
		sum := math.Pow(10, 42.0/10) // ambient 42 dB
		for _, r := range roads {
			d := distSeg(p, r) + 10
			db := 85 - 18*math.Log10(d/10)
			sum += math.Pow(10, db/10)
		}
		for _, s := range sources {
			d := p.Dist(s.p) + 10
			db := s.db - 22*math.Log10(d/10)
			sum += math.Pow(10, db/10)
		}
		return 10 * math.Log10(sum)
	}
	pts := make([]geom.Point, 0, nPoints+4)
	vals := make([]float64, 0, nPoints+4)
	add := func(p geom.Point) {
		pts = append(pts, p)
		vals = append(vals, level(p)+rng.NormFloat64()*0.5) // measurement noise
	}
	// Corners anchor the hull so the TIN covers the whole area.
	add(geom.Pt(0, 0))
	add(geom.Pt(width, 0))
	add(geom.Pt(width, height))
	add(geom.Pt(0, height))
	for len(pts) < nPoints {
		add(geom.Pt(rng.Float64()*width, rng.Float64()*height))
	}
	return tin.FromPoints(pts, vals)
}

// DefaultNoiseTIN is the Fig 8b dataset at its paper-like size
// (~9,000 triangles).
func DefaultNoiseTIN() (*tin.TIN, error) { return NoiseTIN(4600, 907) }

// Queries generates the paper's workload: count random interval queries of
// relative width qinterval (fraction of the normalized value space [0, 1]).
// A width of 0 produces exact value queries. Query positions are uniform
// over the field's value range, as in §4.
func Queries(vr geom.Interval, qinterval float64, count int, seed int64) []geom.Interval {
	rng := rand.New(rand.NewSource(seed))
	width := qinterval * vr.Length()
	out := make([]geom.Interval, count)
	for i := range out {
		lo := vr.Lo + rng.Float64()*(vr.Length()-width)
		out[i] = geom.Interval{Lo: lo, Hi: lo + width}
	}
	return out
}

// QIntervalsReal is the Qinterval grid of the real-data experiments (Fig 8).
var QIntervalsReal = []float64{0, 0.02, 0.04, 0.06, 0.08, 0.1}

// QIntervalsSynthetic is the Qinterval grid of the synthetic experiments
// (Fig 11 and Fig 12).
var QIntervalsSynthetic = []float64{0, 0.01, 0.02, 0.03, 0.04, 0.05}

// HSweep is the roughness grid of Fig 11.
var HSweep = []float64{0.1, 0.3, 0.6, 0.9}

// QueryCount is the number of random queries averaged per Qinterval point
// in every experiment of §4.
const QueryCount = 200

var _ field.Field = (*grid.DEM)(nil)
