package workload

import (
	"math"
	"testing"

	"fielddb/internal/geom"
)

func TestTerrain(t *testing.T) {
	d, err := Terrain(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumCells() != 64*64 {
		t.Fatalf("cells = %d", d.NumCells())
	}
	vr := d.ValueRange()
	if vr.Lo != 200 || vr.Hi != 1400 {
		t.Fatalf("elevation range = %v", vr)
	}
	// Deterministic.
	d2, _ := Terrain(64, 1)
	if d2.VertexHeight(10, 10) != d.VertexHeight(10, 10) {
		t.Fatal("terrain not deterministic")
	}
}

func TestFractalDEMNormalized(t *testing.T) {
	d, err := FractalDEM(32, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	vr := d.ValueRange()
	if vr.Lo != 0 || vr.Hi != 1 {
		t.Fatalf("value range = %v, want [0,1]", vr)
	}
	if _, err := FractalDEM(33, 0.5, 7); err == nil {
		t.Fatal("non-power-of-two side accepted")
	}
}

func TestMonotonic(t *testing.T) {
	d, err := Monotonic(16)
	if err != nil {
		t.Fatal(err)
	}
	vr := d.ValueRange()
	if vr.Lo != 0 || vr.Hi != 32 {
		t.Fatalf("value range = %v", vr)
	}
	if d.VertexHeight(3, 5) != 8 {
		t.Fatalf("w(3,5) = %g", d.VertexHeight(3, 5))
	}
}

func TestNoiseTIN(t *testing.T) {
	tn, err := NoiseTIN(600, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Noise levels must look like dB values: ambient ≥ ~40, peaks < 120.
	vr := tn.ValueRange()
	if vr.Lo < 30 || vr.Hi > 120 || vr.Length() < 10 {
		t.Fatalf("noise range = %v — not dB-like", vr)
	}
	// Triangle count ~ 2× point count.
	if tn.NumCells() < 600 || tn.NumCells() > 1400 {
		t.Fatalf("cells = %d for 600 points", tn.NumCells())
	}
	if _, err := NoiseTIN(3, 1); err == nil {
		t.Fatal("tiny TIN accepted")
	}
}

func TestDefaultNoiseTINSize(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tn, err := DefaultNoiseTIN()
	if err != nil {
		t.Fatal(err)
	}
	// "about 9000 triangles" (§4.1).
	if tn.NumCells() < 8000 || tn.NumCells() > 10000 {
		t.Fatalf("default noise TIN has %d triangles, want ≈9000", tn.NumCells())
	}
}

func TestQueries(t *testing.T) {
	vr := geom.Interval{Lo: 100, Hi: 200}
	qs := Queries(vr, 0.1, QueryCount, 1)
	if len(qs) != QueryCount {
		t.Fatalf("count = %d", len(qs))
	}
	for _, q := range qs {
		if q.Lo < vr.Lo-1e-9 || q.Hi > vr.Hi+1e-9 {
			t.Fatalf("query %v outside range %v", q, vr)
		}
		if math.Abs(q.Length()-10) > 1e-9 {
			t.Fatalf("query width %g, want 10", q.Length())
		}
	}
	// Exact queries.
	for _, q := range Queries(vr, 0, 50, 2) {
		if q.Length() != 0 {
			t.Fatalf("exact query has width %g", q.Length())
		}
	}
	// Determinism.
	a := Queries(vr, 0.05, 10, 3)
	b := Queries(vr, 0.05, 10, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("queries not deterministic")
		}
	}
}

func TestGrids(t *testing.T) {
	if len(QIntervalsReal) != 6 || QIntervalsReal[5] != 0.1 {
		t.Fatalf("QIntervalsReal = %v", QIntervalsReal)
	}
	if len(QIntervalsSynthetic) != 6 || QIntervalsSynthetic[5] != 0.05 {
		t.Fatalf("QIntervalsSynthetic = %v", QIntervalsSynthetic)
	}
	if len(HSweep) != 4 {
		t.Fatalf("HSweep = %v", HSweep)
	}
}
