package approx

import (
	"math"
	"math/rand"
	"testing"

	"fielddb/internal/geom"
)

// randomCells builds n random cell intervals and areas from a seeded source.
func randomCells(n int, seed int64) ([]geom.Interval, []float64) {
	rng := rand.New(rand.NewSource(seed))
	ivs := make([]geom.Interval, n)
	areas := make([]float64, n)
	for i := range ivs {
		lo := rng.Float64() * 1000
		w := rng.Float64() * 40
		ivs[i] = geom.Interval{Lo: lo, Hi: lo + w}
		areas[i] = 0.25 + rng.Float64()
	}
	return ivs, areas
}

// exactAgg brute-forces the true count and area for query q.
func exactAgg(ivs []geom.Interval, areas []float64, q geom.Interval) (count, area float64) {
	for i, iv := range ivs {
		if iv.Intersects(q) {
			count++
			area += areas[i]
		}
	}
	return count, area
}

// TestCertifiedBound is the core guarantee: on randomized cell sets and
// randomized queries, the true error never exceeds the certified bound.
func TestCertifiedBound(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100, 2500} {
		for seed := int64(1); seed <= 3; seed++ {
			ivs, areas := randomCells(n, seed*17)
			s, err := Build(ivs, areas, 4*4096)
			if err != nil {
				t.Fatalf("Build(n=%d): %v", n, err)
			}
			buf := s.Encode()
			rng := rand.New(rand.NewSource(seed * 31))
			for trial := 0; trial < 200; trial++ {
				lo := rng.Float64()*1200 - 100
				hi := lo + rng.Float64()*400
				est, err := EvalEncoded(buf, lo, hi)
				if err != nil {
					t.Fatalf("EvalEncoded: %v", err)
				}
				cnt, area := exactAgg(ivs, areas, geom.Interval{Lo: lo, Hi: hi})
				if e := math.Abs(est.Count - cnt); e > est.CountBound {
					t.Fatalf("n=%d seed=%d q=[%g,%g]: count err %g > certified %g",
						n, seed, lo, hi, e, est.CountBound)
				}
				if e := math.Abs(est.Area - area); e > est.AreaBound {
					t.Fatalf("n=%d seed=%d q=[%g,%g]: area err %g > certified %g",
						n, seed, lo, hi, e, est.AreaBound)
				}
			}
		}
	}
}

// TestExactOutsideDomain checks the clamp paths: queries entirely below or
// above the value domain answer exactly with zero bound, and a query
// covering everything answers N exactly.
func TestExactOutsideDomain(t *testing.T) {
	ivs, areas := randomCells(500, 5)
	s, err := Build(ivs, areas, 4*4096)
	if err != nil {
		t.Fatal(err)
	}
	buf := s.Encode()
	est, err := EvalEncoded(buf, -500, -400)
	if err != nil {
		t.Fatal(err)
	}
	if est.Count != 0 || est.CountBound != 0 || est.Area != 0 || est.AreaBound != 0 {
		t.Fatalf("below-domain query not exact zero: %+v", est)
	}
	est, err = EvalEncoded(buf, -1e6, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if est.Count != 500 || est.CountBound != 0 {
		t.Fatalf("covering query not exact N: %+v", est)
	}
	if math.Abs(est.Area-est.TotalArea) > 1e-9 || est.AreaBound != 0 {
		t.Fatalf("covering query not exact total area: %+v", est)
	}
}

// TestBudgetScaling: more budget must not certify worse (the greedy splitter
// only improves the worst segment), and tiny budgets still produce valid
// certified answers.
func TestBudgetScaling(t *testing.T) {
	ivs, areas := randomCells(3000, 9)
	small, err := Build(ivs, areas, headerSize+numFns*segSize)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(ivs, areas, 4*4096)
	if err != nil {
		t.Fatal(err)
	}
	sumBound := func(s *Summary) float64 {
		total := 0.0
		for i := range s.Fns {
			for _, seg := range s.Fns[i].Segments {
				total += seg.Bound
			}
		}
		return total
	}
	worstSeg := func(s *Summary) float64 {
		worst := 0.0
		for i := range s.Fns {
			for _, seg := range s.Fns[i].Segments {
				if seg.Bound > worst {
					worst = seg.Bound
				}
			}
		}
		return worst
	}
	_ = sumBound
	if worstSeg(big) > worstSeg(small) {
		t.Fatalf("bigger budget certified worse: %g > %g", worstSeg(big), worstSeg(small))
	}
	buf := small.Encode()
	cnt, _ := exactAgg(ivs, areas, geom.Interval{Lo: 100, Hi: 300})
	est, err := EvalEncoded(buf, 100, 300)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(est.Count - cnt); e > est.CountBound {
		t.Fatalf("1-segment summary violates bound: err %g > %g", e, est.CountBound)
	}
	if MaxSegments(headerSize) != 0 {
		t.Fatalf("MaxSegments(headerSize) = %d, want 0", MaxSegments(headerSize))
	}
	if _, err := Build(ivs, areas, 10); err == nil {
		t.Fatal("Build with impossible budget succeeded")
	}
}

// TestEncodeDecodeRoundTrip checks Decode inverts Encode.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	ivs, areas := randomCells(300, 3)
	s, err := Build(ivs, areas, 4*4096)
	if err != nil {
		t.Fatal(err)
	}
	s.WidenCount, s.WidenArea = 3, 1.5
	buf := s.Encode()
	if len(buf) != s.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(buf), s.EncodedSize())
	}
	d, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.N != s.N || d.TotalArea != s.TotalArea ||
		d.WidenCount != s.WidenCount || d.WidenArea != s.WidenArea {
		t.Fatalf("header mismatch: %+v vs %+v", d, s)
	}
	for i := range s.Fns {
		if len(d.Fns[i].Segments) != len(s.Fns[i].Segments) {
			t.Fatalf("fn %d: %d segments, want %d", i, len(d.Fns[i].Segments), len(s.Fns[i].Segments))
		}
		for j, seg := range s.Fns[i].Segments {
			got := d.Fns[i].Segments[j]
			if got != seg {
				t.Fatalf("fn %d seg %d: %+v vs %+v", i, j, got, seg)
			}
		}
	}
}

// TestPatchWiden checks that widening keeps bounds valid after cells move:
// mutate some intervals, patch the summary by (touched, Σ areas), and verify
// the stale summary still certifies the new truth.
func TestPatchWiden(t *testing.T) {
	ivs, areas := randomCells(800, 21)
	s, err := Build(ivs, areas, 4*4096)
	if err != nil {
		t.Fatal(err)
	}
	buf := s.Encode()
	rng := rand.New(rand.NewSource(99))
	touched, touchedArea := 0.0, 0.0
	for k := 0; k < 60; k++ {
		i := rng.Intn(len(ivs))
		lo := rng.Float64() * 1000
		ivs[i] = geom.Interval{Lo: lo, Hi: lo + rng.Float64()*40}
		touched++
		touchedArea += areas[i]
	}
	PatchWiden(buf, touched, touchedArea)
	if c, a := Widen(buf); c != touched || a != touchedArea {
		t.Fatalf("Widen = (%g, %g), want (%g, %g)", c, a, touched, touchedArea)
	}
	for trial := 0; trial < 200; trial++ {
		lo := rng.Float64() * 1000
		hi := lo + rng.Float64()*300
		est, err := EvalEncoded(buf, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		cnt, area := exactAgg(ivs, areas, geom.Interval{Lo: lo, Hi: hi})
		if e := math.Abs(est.Count - cnt); e > est.CountBound {
			t.Fatalf("widened count bound violated: err %g > %g", e, est.CountBound)
		}
		if e := math.Abs(est.Area - area); e > est.AreaBound {
			t.Fatalf("widened area bound violated: err %g > %g", e, est.AreaBound)
		}
	}
}

// TestDegenerateInputs: identical intervals (single breakpoint), zero-width
// intervals, and negative-free behavior.
func TestDegenerateInputs(t *testing.T) {
	ivs := make([]geom.Interval, 50)
	areas := make([]float64, 50)
	for i := range ivs {
		ivs[i] = geom.Interval{Lo: 7, Hi: 7}
		areas[i] = 2
	}
	s, err := Build(ivs, areas, 4*4096)
	if err != nil {
		t.Fatal(err)
	}
	buf := s.Encode()
	for _, q := range [][2]float64{{7, 7}, {0, 7}, {7, 10}, {0, 10}, {8, 10}, {0, 6}} {
		est, err := EvalEncoded(buf, q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		cnt, area := exactAgg(ivs, areas, geom.Interval{Lo: q[0], Hi: q[1]})
		if e := math.Abs(est.Count - cnt); e > est.CountBound {
			t.Fatalf("q=%v: count err %g > bound %g", q, e, est.CountBound)
		}
		if e := math.Abs(est.Area - area); e > est.AreaBound {
			t.Fatalf("q=%v: area err %g > bound %g", q, e, est.AreaBound)
		}
	}
	if _, err := Build(nil, nil, 4*4096); err == nil {
		t.Fatal("Build(no cells) succeeded")
	}
	if _, err := Build(ivs, areas[:3], 4*4096); err == nil {
		t.Fatal("Build(length mismatch) succeeded")
	}
}

// TestFractionBound sanity-checks the fraction view.
func TestFractionBound(t *testing.T) {
	ivs, areas := randomCells(400, 77)
	s, err := Build(ivs, areas, 4*4096)
	if err != nil {
		t.Fatal(err)
	}
	buf := s.Encode()
	est, err := EvalEncoded(buf, 200, 600)
	if err != nil {
		t.Fatal(err)
	}
	frac, bound := est.Fraction()
	if frac < 0 || frac > 1 {
		t.Fatalf("fraction %g outside [0,1]", frac)
	}
	_, area := exactAgg(ivs, areas, geom.Interval{Lo: 200, Hi: 600})
	if e := math.Abs(frac - area/est.TotalArea); e > bound {
		t.Fatalf("fraction err %g > bound %g", e, bound)
	}
	if (Estimate{}).N != 0 {
		t.Fatal("zero Estimate not zero")
	}
	zf, zb := (Estimate{}).Fraction()
	if zf != 0 || zb != 0 {
		t.Fatal("zero-area fraction not (0,0)")
	}
}
