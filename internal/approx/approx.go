// Package approx builds learned polynomial summaries over a value index's
// cell-interval distribution, answering value-range COUNT/AREA aggregates
// with a certified error bound in O(1) page reads (PolyFit, Li et al., arXiv
// 2003.08031, adapted to the interval-stabbing counts of field value
// queries).
//
// # The four cumulative functions
//
// A cell with interval [lo_i, hi_i] intersects a query [lo, hi] iff
// lo_i ≤ hi AND hi_i ≥ lo. Writing
//
//	Chi(x) = Σ w_i over cells with hi_i <  x   (weight below x by interval top)
//	Clo(x) = Σ w_i over cells with lo_i ≤ x   (weight up to x by interval bottom)
//
// the cells excluded by hi_i < lo all satisfy lo_i ≤ hi_i < lo ≤ hi, so they
// are a subset of those counted by Clo(hi) and the intersection weight is
// exactly
//
//	agg([lo, hi]) = Clo(hi) − Chi(lo).
//
// The package fits both functions twice — once with unit weights (COUNT) and
// once with cell-area weights (AREA) — as monotone step functions over the
// value domain, approximated by piecewise degree-≤2 polynomials.
//
// # Certified bounds
//
// Each fitted segment carries a bound: the exact supremum of |p(x) − C(x)|
// over the segment, computed against the true step function (which is
// piecewise constant, so the supremum is attained at a breakpoint's one-sided
// limits or at the parabola's vertex — all enumerable). An aggregate answer's
// certified bound is the sum of the two segment bounds it touched plus the
// widening term accumulated by live updates; the true answer is guaranteed
// within it.
//
// Segments are grown by greedy worst-first splitting: fit the whole domain,
// then repeatedly split the segment with the largest certified bound at its
// median breakpoint, until the encoding budget (a fixed handful of pages) is
// exhausted or the bound reaches zero.
//
// The encoded form is self-contained bytes designed to live in a few
// dedicated storage pages: an aggregate answer costs at most those few page
// reads regardless of query selectivity.
package approx

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"fielddb/internal/geom"
)

// Encoding geometry. The header pins the widen fields at fixed offsets so a
// live-update batch can widen the certified bound by patching 16 bytes of the
// first summary page without re-encoding.
const (
	magic      = "FSM1"
	version    = 1
	numFns     = 4
	headerSize = 4 + 2 + 2 + 8 + 8 + 8 + 8 + numFns*(8+4+4) // 104
	segSize    = 5 * 8                                      // hiKnot, c0, c1, c2, bound

	// widenCountOff and widenAreaOff locate the two widening accumulators
	// inside the header (and therefore inside the first summary page).
	widenCountOff = 24
	widenAreaOff  = 32
)

// The four fitted functions, in encoding order.
const (
	fnCountHi = iota // unit weight below x by interval top (strict)
	fnCountLo        // unit weight up to x by interval bottom (inclusive)
	fnAreaHi         // area weight below x by interval top (strict)
	fnAreaLo         // area weight up to x by interval bottom (inclusive)
)

// Segment is one fitted piece of a cumulative function: on [Lo, Hi] the
// function is approximated by p(x) = C0 + C1·(x−Lo) + C2·(x−Lo)², with
// |p(x) − C(x)| ≤ Bound certified over the whole closed segment.
type Segment struct {
	Lo, Hi     float64
	C0, C1, C2 float64
	Bound      float64
}

// Fn is one fitted cumulative function: contiguous segments tiling
// [Segments[0].Lo, Segments[last].Hi], plus the exact total the function
// reaches past its last knot.
type Fn struct {
	Segments []Segment
	Total    float64
}

// Summary is a decoded polynomial summary: the four fitted cumulative
// functions plus the exact totals and the update-widening accumulators.
type Summary struct {
	N          float64 // exact cell count at fit time
	TotalArea  float64 // exact Σ cell areas at fit time
	WidenCount float64 // certified-count slack accumulated by updates
	WidenArea  float64 // certified-area slack accumulated by updates
	Fns        [numFns]Fn
}

// Estimate is an approximate aggregate answer with its certified bounds:
// |Count − true count| ≤ CountBound and |Area − true area| ≤ AreaBound.
type Estimate struct {
	Count, CountBound float64
	Area, AreaBound   float64
	N, TotalArea      float64
}

// Fraction returns the estimated area fraction of the field matching the
// query, with its certified bound. A zero-area summary reports (0, 0).
func (e Estimate) Fraction() (frac, bound float64) {
	if e.TotalArea <= 0 {
		return 0, 0
	}
	return e.Area / e.TotalArea, e.AreaBound / e.TotalArea
}

// MaxSegments returns how many segments per function an encoding budget of n
// bytes affords (zero when even the header does not fit).
func MaxSegments(budget int) int {
	if budget < headerSize+numFns*segSize {
		return 0
	}
	return (budget - headerSize) / numFns / segSize
}

// stepData is one cumulative step function in breakpoint form: strictly
// increasing distinct keys bx with cum[j] = Σ weights of keys ≤ bx[j].
type stepData struct {
	bx  []float64
	cum []float64
}

func (d *stepData) total() float64 {
	if len(d.cum) == 0 {
		return 0
	}
	return d.cum[len(d.cum)-1]
}

// buildStep folds (key, weight) pairs — already sorted by key — into
// breakpoint form.
func buildStep(keys, weights []float64) stepData {
	var d stepData
	for i, k := range keys {
		if n := len(d.bx); n > 0 && d.bx[n-1] == k {
			d.cum[n-1] += weights[i]
			continue
		}
		prev := 0.0
		if n := len(d.cum); n > 0 {
			prev = d.cum[n-1]
		}
		d.bx = append(d.bx, k)
		d.cum = append(d.cum, prev+weights[i])
	}
	return d
}

// fitSegment least-squares-fits a degree-≤2 polynomial to the step midpoints
// of breakpoints [i0, i1] and returns it anchored at bx[i0]. Midpoints —
// (left limit + right value)/2 at each breakpoint — halve the unavoidable
// error at a jump compared to fitting either side.
func fitSegment(d *stepData, i0, i1 int) (c0, c1, c2 float64) {
	lo := d.bx[i0]
	span := d.bx[i1] - lo
	n := i1 - i0 + 1
	if n == 1 || span == 0 {
		prev := 0.0
		if i0 > 0 {
			prev = d.cum[i0-1]
		}
		return (prev + d.cum[i1]) / 2, 0, 0
	}
	// Accumulate normal equations over normalized t = (x − lo)/span for
	// conditioning; convert coefficients back to x at the end.
	var s0, s1, s2, s3, s4, sy, sty, st2y float64
	for j := i0; j <= i1; j++ {
		t := (d.bx[j] - lo) / span
		prev := 0.0
		if j > 0 {
			prev = d.cum[j-1]
		}
		y := (prev + d.cum[j]) / 2
		t2 := t * t
		s0++
		s1 += t
		s2 += t2
		s3 += t2 * t
		s4 += t2 * t2
		sy += y
		sty += t * y
		st2y += t2 * y
	}
	a0, a1, a2, ok := solve3(s0, s1, s2, s1, s2, s3, s2, s3, s4, sy, sty, st2y)
	if !ok {
		// Degenerate quadratic system: fall back to a line, then a constant.
		det := s0*s2 - s1*s1
		if det != 0 {
			a0 = (sy*s2 - sty*s1) / det
			a1 = (s0*sty - s1*sy) / det
			a2 = 0
		} else {
			a0, a1, a2 = sy/s0, 0, 0
		}
	}
	return a0, a1 / span, a2 / (span * span)
}

// solve3 solves the symmetric 3×3 system by Gaussian elimination with
// partial pivoting; ok is false when the matrix is (near-)singular.
func solve3(m00, m01, m02, m10, m11, m12, m20, m21, m22, b0, b1, b2 float64) (x0, x1, x2 float64, ok bool) {
	m := [3][4]float64{
		{m00, m01, m02, b0},
		{m10, m11, m12, b1},
		{m20, m21, m22, b2},
	}
	for col := 0; col < 3; col++ {
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return 0, 0, 0, false
		}
		m[col], m[piv] = m[piv], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c < 4; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	return m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2], true
}

// certify computes the exact supremum of |p − C| over breakpoints [i0, i1],
// where p is anchored at bx[i0]. The step function is constant between
// breakpoints, so the supremum is attained at a breakpoint (against both its
// one-sided limits — covering the strict and inclusive conventions alike) or
// at the parabola vertex within a piece. A hair of slack absorbs float
// rounding between the certification and later evaluations.
func certify(d *stepData, i0, i1 int, c0, c1, c2 float64) float64 {
	lo := d.bx[i0]
	eval := func(x float64) float64 {
		dx := x - lo
		return c0 + dx*(c1+dx*c2)
	}
	worst := 0.0
	for j := i0; j <= i1; j++ {
		p := eval(d.bx[j])
		prev := 0.0
		if j > 0 {
			prev = d.cum[j-1]
		}
		if e := math.Abs(p - prev); e > worst {
			worst = e
		}
		if e := math.Abs(p - d.cum[j]); e > worst {
			worst = e
		}
	}
	if c2 != 0 {
		xv := lo - c1/(2*c2)
		if xv > d.bx[i0] && xv < d.bx[i1] {
			// The piece holding the vertex carries the step value of the
			// breakpoint at or before xv.
			j := searchFloat(d.bx, i0, i1, xv)
			if e := math.Abs(eval(xv) - d.cum[j]); e > worst {
				worst = e
			}
		}
	}
	total := d.total()
	return worst*(1+1e-12) + math.Abs(total)*1e-12
}

// searchFloat returns the largest j in [i0, i1] with bx[j] ≤ x (assumes
// bx[i0] ≤ x).
func searchFloat(bx []float64, i0, i1 int, x float64) int {
	lo, hi := i0, i1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if bx[mid] <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// fitRange is one working segment during greedy splitting.
type fitRange struct {
	i0, i1     int
	c0, c1, c2 float64
	bound      float64
}

func makeRange(d *stepData, i0, i1 int) fitRange {
	c0, c1, c2 := fitSegment(d, i0, i1)
	return fitRange{i0: i0, i1: i1, c0: c0, c1: c1, c2: c2,
		bound: certify(d, i0, i1, c0, c1, c2)}
}

// fitFn fits one cumulative function with at most maxSegs segments by greedy
// worst-first splitting at median breakpoints.
func fitFn(d *stepData, maxSegs int) Fn {
	if len(d.bx) == 0 {
		return Fn{}
	}
	ranges := []fitRange{makeRange(d, 0, len(d.bx)-1)}
	for len(ranges) < maxSegs {
		worst, at := 0.0, -1
		for i, r := range ranges {
			if r.bound > worst && r.i1 > r.i0 {
				worst, at = r.bound, i
			}
		}
		if at < 0 || worst == 0 {
			break
		}
		r := ranges[at]
		mid := (r.i0 + r.i1) / 2
		if mid == r.i0 {
			mid++
		}
		left, right := makeRange(d, r.i0, mid), makeRange(d, mid, r.i1)
		ranges[at] = left
		ranges = append(ranges, fitRange{})
		copy(ranges[at+2:], ranges[at+1:])
		ranges[at+1] = right
	}
	fn := Fn{Total: d.total(), Segments: make([]Segment, len(ranges))}
	for i, r := range ranges {
		fn.Segments[i] = Segment{
			Lo: d.bx[r.i0], Hi: d.bx[r.i1],
			C0: r.c0, C1: r.c1, C2: r.c2, Bound: r.bound,
		}
	}
	return fn
}

// Build fits a summary over the cells' value intervals and areas. budget is
// the encoded-size ceiling in bytes (the dedicated summary pages); the fit
// spends it greedily where the certified bound is worst. ivs and areas are
// snapshots — Build neither retains nor mutates them.
func Build(ivs []geom.Interval, areas []float64, budget int) (*Summary, error) {
	if len(ivs) == 0 {
		return nil, fmt.Errorf("approx: no cells to summarize")
	}
	if len(areas) != len(ivs) {
		return nil, fmt.Errorf("approx: %d intervals but %d areas", len(ivs), len(areas))
	}
	maxSegs := MaxSegments(budget)
	if maxSegs == 0 {
		return nil, fmt.Errorf("approx: budget %d bytes cannot hold a summary (need ≥ %d)",
			budget, headerSize+numFns*segSize)
	}
	n := len(ivs)
	// Sort indices by interval top and bottom once; the four step functions
	// share the two orders.
	byHi := sortedBy(ivs, func(iv geom.Interval) float64 { return iv.Hi })
	byLo := sortedBy(ivs, func(iv geom.Interval) float64 { return iv.Lo })
	keysHi, keysLo := make([]float64, n), make([]float64, n)
	onesHi, areasHi := make([]float64, n), make([]float64, n)
	onesLo, areasLo := make([]float64, n), make([]float64, n)
	totalArea := 0.0
	for i, id := range byHi {
		keysHi[i] = ivs[id].Hi
		onesHi[i] = 1
		areasHi[i] = areas[id]
	}
	for i, id := range byLo {
		keysLo[i] = ivs[id].Lo
		onesLo[i] = 1
		areasLo[i] = areas[id]
		totalArea += areas[id]
	}
	s := &Summary{N: float64(n), TotalArea: totalArea}
	steps := [numFns]stepData{
		fnCountHi: buildStep(keysHi, onesHi),
		fnCountLo: buildStep(keysLo, onesLo),
		fnAreaHi:  buildStep(keysHi, areasHi),
		fnAreaLo:  buildStep(keysLo, areasLo),
	}
	for i := range steps {
		s.Fns[i] = fitFn(&steps[i], maxSegs)
	}
	return s, nil
}

// sortedBy returns cell indices ordered by key(ivs[i]) ascending (stable on
// ties by index, for determinism).
func sortedBy(ivs []geom.Interval, key func(geom.Interval) float64) []int {
	idx := make([]int, len(ivs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ka, kb := key(ivs[idx[a]]), key(ivs[idx[b]])
		if ka != kb {
			return ka < kb
		}
		return idx[a] < idx[b]
	})
	return idx
}

// EncodedSize returns the exact byte length Encode will produce.
func (s *Summary) EncodedSize() int {
	n := headerSize
	for i := range s.Fns {
		n += len(s.Fns[i].Segments) * segSize
	}
	return n
}

// Encode serializes the summary. The layout keeps the widen accumulators at
// fixed offsets in the first bytes so PatchWiden can update them in place on
// the first summary page.
func (s *Summary) Encode() []byte {
	buf := make([]byte, s.EncodedSize())
	copy(buf, magic)
	binary.LittleEndian.PutUint16(buf[4:], version)
	binary.LittleEndian.PutUint16(buf[6:], 0)
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(s.N))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(s.TotalArea))
	binary.LittleEndian.PutUint64(buf[widenCountOff:], math.Float64bits(s.WidenCount))
	binary.LittleEndian.PutUint64(buf[widenAreaOff:], math.Float64bits(s.WidenArea))
	off := headerSize
	for i := range s.Fns {
		fn := &s.Fns[i]
		h := 40 + i*16
		first := 0.0
		if len(fn.Segments) > 0 {
			first = fn.Segments[0].Lo
		}
		binary.LittleEndian.PutUint64(buf[h:], math.Float64bits(first))
		binary.LittleEndian.PutUint32(buf[h+8:], uint32(len(fn.Segments)))
		binary.LittleEndian.PutUint32(buf[h+12:], uint32(off))
		for _, seg := range fn.Segments {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(seg.Hi))
			binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(seg.C0))
			binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(seg.C1))
			binary.LittleEndian.PutUint64(buf[off+24:], math.Float64bits(seg.C2))
			binary.LittleEndian.PutUint64(buf[off+32:], math.Float64bits(seg.Bound))
			off += segSize
		}
	}
	return buf
}

func f64at(buf []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
}

// checkHeader validates the magic/version and that every segment array lies
// within buf.
func checkHeader(buf []byte) error {
	if len(buf) < headerSize {
		return fmt.Errorf("approx: summary truncated (%d bytes)", len(buf))
	}
	if string(buf[:4]) != magic {
		return fmt.Errorf("approx: bad summary magic %q", buf[:4])
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != version {
		return fmt.Errorf("approx: unsupported summary version %d", v)
	}
	for i := 0; i < numFns; i++ {
		h := 40 + i*16
		segs := int(binary.LittleEndian.Uint32(buf[h+8:]))
		off := int(binary.LittleEndian.Uint32(buf[h+12:]))
		if off < headerSize || off+segs*segSize > len(buf) {
			return fmt.Errorf("approx: summary function %d out of bounds", i)
		}
	}
	return nil
}

// evalFnEncoded evaluates one encoded cumulative function at x, returning
// the estimate and its certified bound. total is the function's exact value
// past its last knot (N for counts, TotalArea for areas).
func evalFnEncoded(buf []byte, fn int, x, total float64) (v, bound float64) {
	h := 40 + fn*16
	first := f64at(buf, h)
	segs := int(binary.LittleEndian.Uint32(buf[h+8:]))
	off := int(binary.LittleEndian.Uint32(buf[h+12:]))
	if segs == 0 || x < first {
		return 0, 0
	}
	last := f64at(buf, off+(segs-1)*segSize)
	if x > last {
		return total, 0
	}
	// Binary search the first segment with hiKnot ≥ x.
	lo, hi := 0, segs-1
	for lo < hi {
		mid := (lo + hi) / 2
		if f64at(buf, off+mid*segSize) >= x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	segLo := first
	if lo > 0 {
		segLo = f64at(buf, off+(lo-1)*segSize)
	}
	so := off + lo*segSize
	c0 := f64at(buf, so+8)
	c1 := f64at(buf, so+16)
	c2 := f64at(buf, so+24)
	bound = f64at(buf, so+32)
	dx := x - segLo
	v = c0 + dx*(c1+dx*c2)
	// Clamping toward the function's true range never moves the estimate
	// away from the truth, so the bound stays valid.
	v = math.Max(0, math.Min(v, total))
	return v, bound
}

// EvalEncoded answers the aggregate for query [lo, hi] from an encoded
// summary (the concatenated summary pages; trailing padding is ignored).
func EvalEncoded(buf []byte, lo, hi float64) (Estimate, error) {
	if err := checkHeader(buf); err != nil {
		return Estimate{}, err
	}
	n := f64at(buf, 8)
	totalArea := f64at(buf, 16)
	widenCount := f64at(buf, widenCountOff)
	widenArea := f64at(buf, widenAreaOff)
	cHi, bHi := evalFnEncoded(buf, fnCountHi, lo, n)
	cLo, bLo := evalFnEncoded(buf, fnCountLo, hi, n)
	aHi, abHi := evalFnEncoded(buf, fnAreaHi, lo, totalArea)
	aLo, abLo := evalFnEncoded(buf, fnAreaLo, hi, totalArea)
	e := Estimate{N: n, TotalArea: totalArea}
	e.Count = math.Max(0, math.Min(cLo-cHi, n))
	e.CountBound = math.Min(bHi+bLo+widenCount, n)
	e.Area = math.Max(0, math.Min(aLo-aHi, totalArea))
	e.AreaBound = math.Min(abHi+abLo+widenArea, totalArea)
	return e, nil
}

// Totals reads the exact fit-time totals from an encoded summary.
func Totals(buf []byte) (n, totalArea float64, err error) {
	if err := checkHeader(buf); err != nil {
		return 0, 0, err
	}
	return f64at(buf, 8), f64at(buf, 16), nil
}

// Widen reads the widening accumulators from an encoded summary (or its
// first page — the fields live in the header).
func Widen(buf []byte) (count, area float64) {
	return f64at(buf, widenCountOff), f64at(buf, widenAreaOff)
}

// PatchWiden adds an update batch's slack to the widening accumulators in
// place. page must hold at least the summary header's first widenAreaOff+8
// bytes — in practice the first summary page. Every touched cell can shift
// each cumulative count by at most 1 and each cumulative area by at most its
// area, so adding (cells touched, Σ their areas) keeps every certified bound
// valid without refitting.
func PatchWiden(page []byte, addCount, addArea float64) {
	c := f64at(page, widenCountOff) + addCount
	a := f64at(page, widenAreaOff) + addArea
	binary.LittleEndian.PutUint64(page[widenCountOff:], math.Float64bits(c))
	binary.LittleEndian.PutUint64(page[widenAreaOff:], math.Float64bits(a))
}

// Decode parses an encoded summary back into its structured form (tests and
// diagnostics; the query path evaluates the encoding directly).
func Decode(buf []byte) (*Summary, error) {
	if err := checkHeader(buf); err != nil {
		return nil, err
	}
	s := &Summary{
		N:          f64at(buf, 8),
		TotalArea:  f64at(buf, 16),
		WidenCount: f64at(buf, widenCountOff),
		WidenArea:  f64at(buf, widenAreaOff),
	}
	for i := 0; i < numFns; i++ {
		h := 40 + i*16
		first := f64at(buf, h)
		segs := int(binary.LittleEndian.Uint32(buf[h+8:]))
		off := int(binary.LittleEndian.Uint32(buf[h+12:]))
		fn := Fn{Segments: make([]Segment, segs)}
		switch i {
		case fnCountHi, fnCountLo:
			fn.Total = s.N
		default:
			fn.Total = s.TotalArea
		}
		lo := first
		for j := 0; j < segs; j++ {
			so := off + j*segSize
			fn.Segments[j] = Segment{
				Lo: lo, Hi: f64at(buf, so),
				C0: f64at(buf, so+8), C1: f64at(buf, so+16), C2: f64at(buf, so+24),
				Bound: f64at(buf, so+32),
			}
			lo = fn.Segments[j].Hi
		}
		s.Fns[i] = fn
	}
	return s, nil
}
