package storage

import "testing"

// TestChargeMatchesRead is the contract of the batch executor's attribution
// plane: charging a page sequence without moving data produces exactly the
// statistics that reading the same sequence would — reads, the
// sequential/random split, cache hits, and the simulated clock alike.
func TestChargeMatchesRead(t *testing.T) {
	const pages = 64
	newStore := func() *Pager {
		d := NewMemDisk(128)
		for i := 0; i < pages; i++ {
			d.Alloc()
		}
		return NewPager(d, DefaultDiskModel, 8)
	}
	// Sequences exercising every accounting transition: runs, single pages,
	// backward jumps, and revisits that hit the per-query LRU view.
	sequences := [][2]PageID{
		{0, 9}, {10, 10}, {40, 45}, {5, 7}, {41, 44}, {63, 63}, {0, 2},
	}

	read := newStore().BeginQuery()
	for _, s := range sequences {
		err := read.ReadRun(s[0], s[1], func(PageID, []byte) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
	}

	charged := newStore().BeginQuery()
	for _, s := range sequences {
		charged.ChargeRun(s[0], s[1])
	}
	if got, want := charged.LocalStats(), read.LocalStats(); got != want {
		t.Fatalf("ChargeRun stats %+v != ReadRun stats %+v", got, want)
	}

	// ChargePage page by page is ChargeRun unrolled.
	paged := newStore().BeginQuery()
	for _, s := range sequences {
		for id := s[0]; id <= s[1]; id++ {
			paged.ChargePage(id)
		}
	}
	if got, want := paged.LocalStats(), read.LocalStats(); got != want {
		t.Fatalf("ChargePage stats %+v != ReadRun stats %+v", got, want)
	}
}

// TestChargePublishes checks charged pages flow into the pager totals on
// Stats() exactly like read pages, preserving the invariant that the pager's
// cumulative statistics equal the sum of the published per-query statistics.
func TestChargePublishes(t *testing.T) {
	d := NewMemDisk(128)
	for i := 0; i < 8; i++ {
		d.Alloc()
	}
	p := NewPager(d, DefaultDiskModel, 4)
	qc := p.BeginQuery()
	qc.ChargeRun(0, 5)
	published := qc.Stats()
	if p.Stats() != published {
		t.Fatalf("pager totals %+v != published %+v", p.Stats(), published)
	}
	// An unpublished context leaves the totals untouched.
	p.BeginQuery().ChargeRun(0, 5)
	if p.Stats() != published {
		t.Fatalf("unpublished charges leaked into pager totals: %+v", p.Stats())
	}
}
