package storage

import (
	"container/list"
	"sync"
	"sync/atomic"
)

const (
	// poolShards is the shard count of large buffer pools. Shards partition
	// the page-id space (id & mask), so concurrent queries touching different
	// pages lock different shards.
	poolShards = 16
	// minShardedPoolSize is the capacity below which the pool stays single
	// sharded. Tiny pools — unit tests, deliberately cache-starved runs —
	// keep exact global LRU eviction order, and splitting a handful of frames
	// across shards would distort it for no contention win.
	minShardedPoolSize = 1024
)

// bufPool recycles page-size buffers. Frames return their buffer here when
// the last reference is released, so a steady-state query workload reads
// pages without allocating.
type bufPool struct {
	size int
	pool sync.Pool
}

func newBufPool(size int) *bufPool {
	return &bufPool{size: size}
}

func (bp *bufPool) get() []byte {
	if b, ok := bp.pool.Get().([]byte); ok {
		return b
	}
	return make([]byte, bp.size)
}

func (bp *bufPool) put(b []byte) {
	if cap(b) >= bp.size {
		bp.pool.Put(b[:bp.size]) //nolint:staticcheck // slice header boxing is far cheaper than a page alloc
	}
}

// Frame is one immutable page image shared between the buffer pool and any
// number of concurrent readers. The image is never modified in place — a
// write to a cached page swaps in a fresh frame — so readers can use Data
// without copying or locking. References are counted: the pool holds one
// while the frame is resident, and every view hands the caller one more.
type Frame struct {
	id   PageID
	data []byte
	refs atomic.Int32
	free *bufPool // buffer recycling destination; nil for one-off frames
}

// Data returns the page image. It is valid until Release and must not be
// modified.
func (f *Frame) Data() []byte { return f.data }

// Retain adds a reference, for handing the frame to another owner.
func (f *Frame) Retain() { f.refs.Add(1) }

// Release drops one reference. When the last owner (pool residency included)
// lets go, the page buffer returns to the pager's freelist.
func (f *Frame) Release() {
	n := f.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("storage: Frame released more often than retained")
	}
	if f.free != nil {
		buf := f.data
		f.data = nil
		f.free.put(buf)
	}
}

// newFrame returns a frame owned solely by the caller (one reference).
func newFrame(id PageID, data []byte, free *bufPool) *Frame {
	f := &Frame{id: id, data: data, free: free}
	f.refs.Store(1)
	return f
}

// poolShard is one independently locked LRU over a slice of the page-id
// space.
type poolShard struct {
	mu     sync.Mutex
	cap    int
	lru    *list.List               // front = most recently used; values are *Frame
	frames map[PageID]*list.Element // page id -> element in lru
	hits   int64                    // probes served from this shard
	misses int64                    // probes that fell through to the disk
}

// PoolShardStats is a snapshot of one buffer-pool shard: its capacity and
// occupancy in pages, and how its probes split between hits and misses.
type PoolShardStats struct {
	Cap    int
	Len    int
	Hits   int64
	Misses int64
}

// HitRatio returns hits / probes, or 0 before the first probe.
func (s PoolShardStats) HitRatio() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// shardedPool is the shared buffer pool of a Pager: an N-way sharded,
// reference-counted LRU. Hits hand back a retained *Frame under one shard
// mutex and zero copies; the old single-mutex pool memcpyed a full page per
// get and put.
type shardedPool struct {
	shards []poolShard
	mask   uint32
	bufs   *bufPool
}

// newShardedPool builds a pool of the given capacity. shards is clamped to a
// power of two no larger than the capacity (every shard must hold at least
// one frame); pools below minShardedPoolSize use a single shard so their
// global LRU eviction order is exactly that of the pre-sharding pool.
func newShardedPool(size, shards int, bufs *bufPool) *shardedPool {
	if shards <= 0 {
		shards = poolShards
		if size < minShardedPoolSize {
			shards = 1
		}
	}
	for shards&(shards-1) != 0 {
		shards &= shards - 1 // round down to a power of two
	}
	for shards > size {
		shards >>= 1
	}
	if shards < 1 {
		shards = 1
	}
	sp := &shardedPool{shards: make([]poolShard, shards), mask: uint32(shards - 1), bufs: bufs}
	base, extra := size/shards, size%shards
	for i := range sp.shards {
		c := base
		if i < extra {
			c++
		}
		sp.shards[i] = poolShard{cap: c, lru: list.New(), frames: make(map[PageID]*list.Element)}
	}
	return sp
}

func (sp *shardedPool) shard(id PageID) *poolShard {
	return &sp.shards[uint32(id)&sp.mask]
}

// view returns a retained frame for page id, or nil on a miss.
func (sp *shardedPool) view(id PageID) *Frame {
	s := sp.shard(id)
	s.mu.Lock()
	el, ok := s.frames[id]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil
	}
	s.hits++
	s.lru.MoveToFront(el)
	f := el.Value.(*Frame)
	f.Retain()
	s.mu.Unlock()
	return f
}

// viewRun probes pages first..first+len(frames)-1 with one lock acquisition
// per shard, filling frames[i] with a retained frame or leaving it nil on a
// miss. Misses are left for the caller to fetch from disk in contiguous
// sub-runs.
func (sp *shardedPool) viewRun(first PageID, frames []*Frame) {
	n := len(frames)
	nsh := len(sp.shards)
	for si := range sp.shards {
		// First run index landing in shard si, then stride by shard count.
		start := int((uint32(si) - uint32(first)) & sp.mask)
		if start >= n {
			continue
		}
		s := &sp.shards[si]
		s.mu.Lock()
		for i := start; i < n; i += nsh {
			if el, ok := s.frames[first+PageID(i)]; ok {
				s.hits++
				s.lru.MoveToFront(el)
				f := el.Value.(*Frame)
				f.Retain()
				frames[i] = f
			} else {
				s.misses++
			}
		}
		s.mu.Unlock()
	}
}

// insert takes ownership of data (a freelist buffer holding page id's image)
// and returns a retained frame for the page. If another goroutine inserted
// the page first, its frame wins and data returns to the freelist — both
// hold the same disk image, so either is correct.
func (sp *shardedPool) insert(id PageID, data []byte) *Frame {
	s := sp.shard(id)
	s.mu.Lock()
	if el, ok := s.frames[id]; ok {
		s.lru.MoveToFront(el)
		f := el.Value.(*Frame)
		f.Retain()
		s.mu.Unlock()
		sp.bufs.put(data)
		return f
	}
	for s.lru.Len() >= s.cap {
		back := s.lru.Back()
		s.lru.Remove(back)
		ev := back.Value.(*Frame)
		delete(s.frames, ev.id)
		ev.Release() // drop the pool's reference; readers may still hold theirs
	}
	f := &Frame{id: id, data: data, free: sp.bufs}
	f.refs.Store(2) // one for pool residency, one for the caller
	s.frames[id] = s.lru.PushFront(f)
	s.mu.Unlock()
	return f
}

// get copies page id into buf and reports whether it was resident — the
// copying compatibility path behind Pager.ReadPage/QueryCtx.ReadPage.
func (sp *shardedPool) get(id PageID, buf []byte) bool {
	f := sp.view(id)
	if f == nil {
		return false
	}
	copy(buf, f.data)
	f.Release()
	return true
}

// update refreshes an already-resident page after a write by swapping in a
// fresh frame; readers of the old frame keep their immutable image. Absent
// pages are not inserted (writes happen during build, before the measured
// query phase).
func (sp *shardedPool) update(id PageID, buf []byte) {
	s := sp.shard(id)
	s.mu.Lock()
	el, ok := s.frames[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	old := el.Value.(*Frame)
	data := sp.bufs.get()
	copy(data, buf)
	nf := newFrame(id, data, sp.bufs)
	el.Value = nf
	s.mu.Unlock()
	old.Release()
}

// shardStats snapshots every shard's occupancy and probe counters.
func (sp *shardedPool) shardStats() []PoolShardStats {
	out := make([]PoolShardStats, len(sp.shards))
	for i := range sp.shards {
		s := &sp.shards[i]
		s.mu.Lock()
		out[i] = PoolShardStats{Cap: s.cap, Len: s.lru.Len(), Hits: s.hits, Misses: s.misses}
		s.mu.Unlock()
	}
	return out
}

// drop empties the pool, releasing the pool's reference on every frame.
func (sp *shardedPool) drop() {
	for si := range sp.shards {
		s := &sp.shards[si]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; el = el.Next() {
			el.Value.(*Frame).Release()
		}
		s.lru.Init()
		s.frames = make(map[PageID]*list.Element)
		s.mu.Unlock()
	}
}
