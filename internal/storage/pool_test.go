package storage

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// stampDisk returns a MemDisk with n pages, page i filled with byte i.
func stampDisk(t *testing.T, pageSize, n int) *MemDisk {
	t.Helper()
	disk := NewMemDisk(pageSize)
	buf := make([]byte, pageSize)
	for i := 0; i < n; i++ {
		id, err := disk.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		for j := range buf {
			buf[j] = byte(i)
		}
		if err := disk.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	return disk
}

func TestShardedPoolClampsShardCount(t *testing.T) {
	// The shard count never exceeds the pool size: every shard must hold at
	// least one frame, or caching would silently disappear.
	cases := []struct {
		size, shards, want int
	}{
		{size: 3, shards: 16, want: 2}, // clamped to the largest power of two <= size
		{size: 1, shards: 16, want: 1},
		{size: 1024, shards: 16, want: 16},
		{size: 1024, shards: 7, want: 4}, // rounded down to a power of two
		{size: 2, shards: 0, want: 1},    // auto: small pools stay single-sharded
		{size: 4096, shards: 0, want: 16},
	}
	for _, c := range cases {
		p := NewPagerShards(NewMemDisk(DefaultPageSize), DefaultDiskModel, c.size, c.shards)
		if got := p.PoolShards(); got != c.want {
			t.Errorf("size %d shards %d: got %d shards, want %d", c.size, c.shards, got, c.want)
		}
	}
	if got := NewPager(NewMemDisk(DefaultPageSize), DefaultDiskModel, 0).PoolShards(); got != 0 {
		t.Errorf("disabled pool reports %d shards", got)
	}
}

func TestShardedPoolSmallerThanShardCountCaches(t *testing.T) {
	// A pool of 3 pages asked to use 16 shards must still cache: re-reading
	// the last-read page is a hit at every shard geometry.
	disk := stampDisk(t, 128, 8)
	p := NewPagerShards(disk, DefaultDiskModel, 3, 16)
	buf := make([]byte, 128)
	for i := 0; i < 8; i++ {
		if err := p.ReadPage(PageID(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	before := p.Stats()
	if err := p.ReadPage(7, buf); err != nil {
		t.Fatal(err)
	}
	d := p.Stats().Sub(before)
	if d.CacheHits != 1 || d.Reads != 0 {
		t.Fatalf("re-read of resident page: %+v", d)
	}
	if buf[0] != 7 {
		t.Fatalf("page 7 content byte = %d", buf[0])
	}
}

func TestShardedPoolSizeOne(t *testing.T) {
	disk := stampDisk(t, 128, 4)
	p := NewPagerShards(disk, DefaultDiskModel, 1, 8)
	buf := make([]byte, 128)
	// 0, 0 -> read + hit; 1 evicts 0; 0 misses again.
	reads := []struct {
		id       PageID
		wantHit  bool
		wantByte byte
	}{
		{0, false, 0}, {0, true, 0}, {1, false, 1}, {0, false, 0},
	}
	for i, r := range reads {
		before := p.Stats()
		if err := p.ReadPage(r.id, buf); err != nil {
			t.Fatal(err)
		}
		d := p.Stats().Sub(before)
		if gotHit := d.CacheHits == 1; gotHit != r.wantHit {
			t.Fatalf("read %d of page %d: hit=%v want %v", i, r.id, gotHit, r.wantHit)
		}
		if buf[0] != r.wantByte {
			t.Fatalf("read %d of page %d: byte %d", i, r.id, buf[0])
		}
	}
}

func TestFrameSurvivesEviction(t *testing.T) {
	// A frame held by a reader keeps its immutable image after the pool
	// evicts the page and other reads recycle buffers through the freelist.
	disk := stampDisk(t, 128, 10)
	p := NewPagerShards(disk, DefaultDiskModel, 2, 1)
	f, err := p.ViewPage(3)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{3}, 128)
	buf := make([]byte, 128)
	for i := 0; i < 10; i++ { // evict page 3, churn the freelist
		if err := p.ReadPage(PageID(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(f.Data(), want) {
		t.Fatal("held frame mutated after eviction")
	}
	f.Release()
}

func TestFrameOverReleasePanics(t *testing.T) {
	p := NewPager(stampDisk(t, 128, 1), DefaultDiskModel, 0)
	f, err := p.ViewPage(0)
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	f.Release()
}

func TestWriteSwapsFrameUnderReader(t *testing.T) {
	// WritePage must not mutate a frame a reader is holding: the reader
	// keeps the pre-write image, the next view sees the new one.
	disk := stampDisk(t, 128, 2)
	p := NewPager(disk, DefaultDiskModel, 4)
	f, err := p.ViewPage(0)
	if err != nil {
		t.Fatal(err)
	}
	newImg := bytes.Repeat([]byte{0xAA}, 128)
	if err := p.WritePage(0, newImg); err != nil {
		t.Fatal(err)
	}
	if f.Data()[0] != 0 {
		t.Fatal("reader's frame changed under a concurrent write")
	}
	f.Release()
	g, err := p.ViewPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g.Data(), newImg) {
		t.Fatal("view after write returned the stale image")
	}
	g.Release()
}

func TestConcurrentSamePageInsert(t *testing.T) {
	// Many contexts faulting in the same page concurrently must agree on
	// one frame's data and keep every refcount balanced (run with -race).
	const goroutines = 16
	disk := stampDisk(t, 128, 64)
	p := NewPagerShards(disk, DefaultDiskModel, 8, 4)
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qc := p.BeginQuery()
			for round := 0; round < 200; round++ {
				id := PageID(round % 8) // all goroutines hammer the same 8 pages
				f, err := qc.ViewPage(id)
				if err != nil {
					errc <- err
					return
				}
				if f.Data()[0] != byte(id) {
					errc <- fmt.Errorf("goroutine %d: page %d holds byte %d", g, id, f.Data()[0])
					f.Release()
					return
				}
				f.Release()
			}
			qc.Stats()
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestConcurrentEvictionRefcounts(t *testing.T) {
	// Concurrent readers over a working set much larger than the pool force
	// constant eviction while frames are pinned; -race plus the data checks
	// catch use-after-recycle.
	const pages = 96
	disk := stampDisk(t, 128, pages)
	p := NewPagerShards(disk, DefaultDiskModel, 4, 2)
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qc := p.BeginQuery()
			step := g + 1
			for round := 0; round < 300; round++ {
				id := PageID((round * step) % pages)
				f, err := qc.ViewPage(id)
				if err != nil {
					errc <- err
					return
				}
				data := f.Data()
				for _, b := range data[:8] {
					if b != byte(id) {
						errc <- fmt.Errorf("goroutine %d: page %d corrupted to %d", g, id, b)
						f.Release()
						return
					}
				}
				f.Release()
			}
			qc.Stats()
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestReadRunMatchesPerPageAccounting(t *testing.T) {
	// A run read must charge exactly what the equivalent ReadPage loop
	// charges, across chunk boundaries (> runChunkPages pages) and with a
	// partially resident pool.
	const pages = 3*runChunkPages + 7
	disk := stampDisk(t, 128, pages)
	for _, poolSize := range []int{0, 4, 1 << 10} {
		p := NewPagerShards(disk, DefaultDiskModel, poolSize, 4)
		warm := p.BeginQuery()
		buf := make([]byte, 128)
		for i := 0; i < pages; i += 3 { // leave a scattered residue in the pool
			if err := warm.ReadPage(PageID(i), buf); err != nil {
				t.Fatal(err)
			}
		}
		warm.Stats()

		loop := p.BeginQuery()
		var loopPages []byte
		for i := 0; i < pages; i++ {
			if err := loop.ReadPage(PageID(i), buf); err != nil {
				t.Fatal(err)
			}
			loopPages = append(loopPages, buf[0])
		}
		run := p.BeginQuery()
		var runPages []byte
		err := run.ReadRun(0, pages-1, func(id PageID, page []byte) bool {
			runPages = append(runPages, page[0])
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if ls, rs := loop.Stats(), run.Stats(); ls != rs {
			t.Fatalf("pool %d: loop %v != run %v", poolSize, ls, rs)
		}
		if !bytes.Equal(loopPages, runPages) {
			t.Fatalf("pool %d: run returned different page images", poolSize)
		}
	}
}

func TestReadRunEarlyStopChargesPrefixOnly(t *testing.T) {
	disk := stampDisk(t, 128, 32)
	p := NewPager(disk, DefaultDiskModel, 16)
	qc := p.BeginQuery()
	visited := 0
	err := qc.ReadRun(0, 31, func(id PageID, page []byte) bool {
		visited++
		return visited < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 5 {
		t.Fatalf("visited %d pages, want 5", visited)
	}
	s := qc.Stats()
	if s.Reads != 5 || s.RandReads != 1 || s.SeqReads != 4 {
		t.Fatalf("early-stopped run charged %v", s)
	}
}

func TestReadRunOutOfRange(t *testing.T) {
	disk := stampDisk(t, 128, 4)
	p := NewPager(disk, DefaultDiskModel, 8)
	qc := p.BeginQuery()
	err := qc.ReadRun(2, 9, func(PageID, []byte) bool { return true })
	if err == nil {
		t.Fatal("run past the end of the disk succeeded")
	}
	if s := qc.Stats(); s.Reads != 0 {
		t.Fatalf("failed run charged %v", s)
	}
}

func TestPagerViewPageAccountsLikeReadPage(t *testing.T) {
	// Replay one access sequence on two fresh pagers, one per API: the
	// page images and the accounting must agree exactly.
	seq := []PageID{0, 1, 2, 2, 0, 6, 7, 1}
	pr := NewPager(stampDisk(t, 128, 8), DefaultDiskModel, 4)
	pv := NewPager(stampDisk(t, 128, 8), DefaultDiskModel, 4)
	buf := make([]byte, 128)
	for _, id := range seq {
		if err := pr.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		f, err := pv.ViewPage(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f.Data(), buf) {
			t.Fatalf("view of page %d differs from read", id)
		}
		f.Release()
	}
	if pr.Stats() != pv.Stats() {
		t.Fatalf("ReadPage stats %v != ViewPage stats %v", pr.Stats(), pv.Stats())
	}
}

func TestDropCacheReleasesPoolFrames(t *testing.T) {
	disk := stampDisk(t, 128, 8)
	p := NewPagerShards(disk, DefaultDiskModel, 8, 4)
	held, err := p.ViewPage(2)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	for i := 0; i < 8; i++ {
		if err := p.ReadPage(PageID(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	p.DropCache()
	if held.Data()[0] != 2 {
		t.Fatal("held frame lost its image on DropCache")
	}
	held.Release()
	before := p.Stats()
	if err := p.ReadPage(2, buf); err != nil {
		t.Fatal(err)
	}
	if d := p.Stats().Sub(before); d.CacheHits != 0 || d.Reads != 1 {
		t.Fatalf("read after DropCache: %+v", d)
	}
}
