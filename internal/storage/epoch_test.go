package storage

import (
	"bytes"
	"testing"
)

// commitPatch stages one patched copy of page id (flipping its first byte to
// b) and commits it as a new epoch.
func commitPatch(t *testing.T, p *Pager, id PageID, b byte) uint64 {
	t.Helper()
	buf := make([]byte, p.PageSize())
	qc := p.BeginQuery()
	defer qc.Release()
	if err := qc.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = b
	epoch, _, err := p.CommitOverlays(map[PageID][]byte{id: buf})
	if err != nil {
		t.Fatal(err)
	}
	return epoch
}

func readAt(t *testing.T, p *Pager, epoch uint64, id PageID) []byte {
	t.Helper()
	qc, ok := p.BeginQueryAt(epoch)
	if !ok {
		t.Fatalf("epoch %d not pinnable", epoch)
	}
	defer qc.Release()
	buf := make([]byte, p.PageSize())
	if err := qc.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestOverlayVisibilityAcrossEpochs(t *testing.T) {
	p := NewPager(NewMemDisk(64), DefaultDiskModel, 0)
	id, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	base := bytes.Repeat([]byte{0xAA}, 64)
	if err := p.WritePage(id, base); err != nil {
		t.Fatal(err)
	}
	if p.CurrentEpoch() != 0 {
		t.Fatalf("fresh store at epoch %d", p.CurrentEpoch())
	}

	// A reader pinned before the commit keeps seeing the base image.
	if !p.PinEpoch(0) {
		t.Fatal("cannot pin epoch 0")
	}
	e1 := commitPatch(t, p, id, 0xB1)
	if e1 != 1 || p.CurrentEpoch() != 1 {
		t.Fatalf("epoch after first commit = %d / %d", e1, p.CurrentEpoch())
	}
	e2 := commitPatch(t, p, id, 0xB2)

	if got := readAt(t, p, 0, id); got[0] != 0xAA {
		t.Fatalf("epoch 0 sees %#x", got[0])
	}
	if got := readAt(t, p, e1, id); got[0] != 0xB1 {
		t.Fatalf("epoch 1 sees %#x", got[0])
	}
	if got := readAt(t, p, e2, id); got[0] != 0xB2 {
		t.Fatalf("epoch 2 sees %#x", got[0])
	}
	// Unpatched bytes are identical at every epoch.
	if got := readAt(t, p, e2, id); !bytes.Equal(got[1:], base[1:]) {
		t.Fatal("patched page corrupted beyond byte 0")
	}
	if p.OverlaidPages() != 1 {
		t.Fatalf("OverlaidPages = %d", p.OverlaidPages())
	}
	p.UnpinEpoch(0)
}

func TestPinHoldsEpochAndCompactionRetires(t *testing.T) {
	p := NewPager(NewMemDisk(64), DefaultDiskModel, 0)
	id, _ := p.Alloc()
	p.WritePage(id, make([]byte, 64))

	if !p.PinEpoch(0) {
		t.Fatal("cannot pin current epoch")
	}
	commitPatch(t, p, id, 1)
	// The pin at 0 keeps epoch 0 alive across the commit.
	if got := readAt(t, p, 0, id); got[0] != 0 {
		t.Fatalf("pinned epoch 0 sees %#x", got[0])
	}
	if p.EpochsRetired() != 0 {
		t.Fatalf("retired %d with a live pin", p.EpochsRetired())
	}
	p.UnpinEpoch(0)

	// With no pins below, the next commit compacts epochs 0 and 1 away.
	_, retired, err := p.CommitOverlays(map[PageID][]byte{})
	if err != nil {
		t.Fatal(err)
	}
	if retired != 2 || p.EpochsRetired() != 2 {
		t.Fatalf("retired = %d, total %d", retired, p.EpochsRetired())
	}
	if p.PinEpoch(0) {
		t.Fatal("compacted epoch 0 still pinnable")
	}
	if _, ok := p.BeginQueryAt(1); ok {
		t.Fatal("compacted epoch 1 still queryable")
	}
}

func TestCommitOverlaysValidatesBeforeMutating(t *testing.T) {
	p := NewPager(NewMemDisk(64), DefaultDiskModel, 0)
	id, _ := p.Alloc()
	p.WritePage(id, bytes.Repeat([]byte{7}, 64))

	// A torn (short) page image is rejected.
	if _, _, err := p.CommitOverlays(map[PageID][]byte{id: make([]byte, 63)}); err == nil {
		t.Fatal("short overlay accepted")
	}
	// An overlay for a page the store never allocated is rejected.
	if _, _, err := p.CommitOverlays(map[PageID][]byte{PageID(99): make([]byte, 64)}); err == nil {
		t.Fatal("unallocated overlay accepted")
	}
	// The live epoch and its bytes are untouched by the failed commits.
	if p.CurrentEpoch() != 0 || p.OverlaidPages() != 0 {
		t.Fatalf("failed commit moved the store: epoch %d, %d overlaid",
			p.CurrentEpoch(), p.OverlaidPages())
	}
	if got := readAt(t, p, 0, id); got[0] != 7 {
		t.Fatalf("base page corrupted: %#x", got[0])
	}
}

func TestSnapshotToMaterializesOverlays(t *testing.T) {
	p := NewPager(NewMemDisk(64), DefaultDiskModel, 0)
	id, _ := p.Alloc()
	p.WritePage(id, bytes.Repeat([]byte{0x11}, 64))
	commitPatch(t, p, id, 0x22)

	dst := NewMemDisk(64)
	if err := p.SnapshotTo(dst); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := dst.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	// The copy holds the patched image: persisting after updates writes the
	// current epoch's bytes as plain base pages.
	if buf[0] != 0x22 || buf[1] != 0x11 {
		t.Fatalf("snapshot bytes = %#x %#x", buf[0], buf[1])
	}
}
