package storage

import (
	"math"
	"math/rand"
	"testing"
)

// TestFloatColumnRoundTrip drives the exported column codec over the shapes
// the wire format ships: smooth coordinate runs, noisy values, bit-cast
// integer counters, and adversarial floats.
func TestFloatColumnRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := map[string][]float64{
		"single":   {3.25},
		"constant": {7, 7, 7, 7, 7, 7},
		"ramp":     make([]float64, 257),
		"noise":    make([]float64, 100),
		"ints":     make([]float64, 64),
		"adversarial": {
			0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1),
			math.NaN(), math.MaxFloat64, -math.MaxFloat64,
			math.SmallestNonzeroFloat64, 1e-300, -1e300,
		},
	}
	for i := range cases["ramp"] {
		cases["ramp"][i] = 100 + 0.5*float64(i)
	}
	for i := range cases["noise"] {
		cases["noise"][i] = rng.NormFloat64() * 1e6
	}
	for i := range cases["ints"] {
		cases["ints"][i] = math.Float64frombits(uint64(i * i))
	}
	for name, vals := range cases {
		buf := make([]byte, MaxFloatColumnSize(len(vals)))
		n := EncodeFloatColumn(buf, vals)
		if n <= 0 || n > len(buf) {
			t.Fatalf("%s: encoded length %d outside (0, %d]", name, n, len(buf))
		}
		out := make([]float64, len(vals))
		if err := DecodeFloatColumn(buf[:n], len(vals), out); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		for i, v := range vals {
			if math.Float64bits(out[i]) != math.Float64bits(v) {
				t.Fatalf("%s[%d]: %x != %x", name, i, math.Float64bits(out[i]), math.Float64bits(v))
			}
		}
	}
}

// TestFloatColumnTruncated: a truncated block must fail loudly, not decode
// garbage.
func TestFloatColumnTruncated(t *testing.T) {
	vals := []float64{1, 2, 4, 8, 1e9, -3}
	buf := make([]byte, MaxFloatColumnSize(len(vals)))
	n := EncodeFloatColumn(buf, vals)
	out := make([]float64, len(vals))
	if err := DecodeFloatColumn(buf[:5], len(vals), out); err == nil {
		t.Fatal("header-truncated column decoded")
	}
	// A block cut mid-payload must either error or be caught by the tag
	// array bound.
	if err := DecodeFloatColumn(buf[:n-(n-packedColHeader)/2], len(vals), out); err == nil {
		t.Fatal("payload-truncated column decoded")
	}
}
