package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// The epoch plane is the storage half of MVCC for live fields. A built store
// is immutable; an update batch never rewrites a base page in place. Instead
// it stages copy-on-write page overlays — full page images keyed by the epoch
// that introduced them — and installs them atomically with CommitOverlays,
// which bumps the pager's current epoch. Every QueryCtx pins the epoch it
// opened at and resolves each page to the newest overlay version at or below
// that epoch (or the base page when none exists), so a reader started before
// a commit keeps seeing the exact store it opened, byte for byte, while
// readers started after the commit see the patched pages — no locks on the
// read path beyond a brief RLock per overlaid-page lookup, and no reader ever
// waits for an updater.
//
// Versions older than every pinned epoch are superseded and compacted away at
// the next commit; the count of epochs that fall below the pin low-water mark
// is reported as "retired" for the update metrics.

// pageVersion is one copy-on-write image of a page, visible to readers pinned
// at v.epoch or later (until a newer version supersedes it).
type pageVersion struct {
	epoch uint64
	frame *Frame // immutable; refs never reach zero while installed
}

// epochPlane holds a pager's overlay versions and epoch pins.
type epochPlane struct {
	overlaid atomic.Int64 // number of pages with at least one overlay version

	mu       sync.RWMutex
	versions map[PageID][]pageVersion // ascending by epoch
	pins     map[uint64]int           // epoch -> active readers pinned there
	lowWater uint64                   // oldest epoch still reachable by a new pin
	retired  uint64                   // epochs compacted below the low-water mark
}

// active reports whether any overlay exists, gating the overlay lookup out of
// the read path of never-updated stores.
func (ep *epochPlane) active() bool { return ep.overlaid.Load() > 0 }

// view returns a retained frame for the newest overlay version of id at or
// below epoch, or nil when the base page is current for that epoch.
func (ep *epochPlane) view(id PageID, epoch uint64) *Frame {
	ep.mu.RLock()
	vs := ep.versions[id]
	var f *Frame
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].epoch <= epoch {
			f = vs[i].frame
			f.Retain()
			break
		}
	}
	ep.mu.RUnlock()
	return f
}

// pin registers a reader at epoch. It fails when the epoch has already been
// compacted below the low-water mark, in which case the caller must re-read
// the current epoch and retry.
func (ep *epochPlane) pin(epoch uint64) bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if epoch < ep.lowWater {
		return false
	}
	if ep.pins == nil {
		ep.pins = make(map[uint64]int)
	}
	ep.pins[epoch]++
	return true
}

// unpin releases one reader's pin. Superseded versions are not reclaimed
// here; the next commit compacts them.
func (ep *epochPlane) unpin(epoch uint64) {
	ep.mu.Lock()
	if n := ep.pins[epoch]; n > 1 {
		ep.pins[epoch] = n - 1
	} else {
		delete(ep.pins, epoch)
	}
	ep.mu.Unlock()
}

// compactLocked drops overlay versions that no current or future reader can
// resolve: for each page, every version older than the newest one at or below
// the minimum pinned epoch. It returns how many epochs newly fell below the
// low-water mark. Callers must hold ep.mu.
func (ep *epochPlane) compactLocked(current uint64) uint64 {
	minPinned := current
	for e := range ep.pins {
		if e < minPinned {
			minPinned = e
		}
	}
	if minPinned <= ep.lowWater {
		return 0
	}
	for id, vs := range ep.versions {
		keep := 0
		for i := len(vs) - 1; i >= 0; i-- {
			if vs[i].epoch <= minPinned {
				keep = i
				break
			}
		}
		if keep > 0 {
			ep.versions[id] = append(vs[:0:0], vs[keep:]...)
		}
	}
	retired := minPinned - ep.lowWater
	ep.lowWater = minPinned
	ep.retired += retired
	return retired
}

// CurrentEpoch returns the epoch new queries pin: 0 for a never-updated
// store, incremented by every committed update batch.
func (p *Pager) CurrentEpoch() uint64 { return p.epoch.Load() }

// SetEpoch installs the starting epoch of a store opened from a persisted
// catalog, before any queries run.
func (p *Pager) SetEpoch(e uint64) {
	p.epoch.Store(e)
	p.ov.mu.Lock()
	p.ov.lowWater = e
	p.ov.mu.Unlock()
}

// EpochsRetired returns how many epochs have been compacted below the pin
// low-water mark over the pager's lifetime.
func (p *Pager) EpochsRetired() uint64 {
	p.ov.mu.RLock()
	defer p.ov.mu.RUnlock()
	return p.ov.retired
}

// OverlaidPages returns how many pages currently carry at least one overlay
// version.
func (p *Pager) OverlaidPages() int { return int(p.ov.overlaid.Load()) }

// CommitOverlays atomically installs the staged page images as the next
// epoch and makes that epoch current: readers pinned at the previous epoch
// keep resolving the pages they saw, readers arriving after see every new
// image. The page images are copied, so callers may reuse their buffers. It
// returns the new epoch and how many old epochs were retired by compaction.
// Validation happens before any mutation — a bad image leaves the live epoch
// untouched.
func (p *Pager) CommitOverlays(pages map[PageID][]byte) (epoch, retiredEpochs uint64, err error) {
	ps := p.PageSize()
	numPages := p.NumPages()
	for id, buf := range pages {
		if len(buf) != ps {
			return 0, 0, fmt.Errorf("storage: overlay for page %d is %d bytes, want %d", id, len(buf), ps)
		}
		if int(id) >= numPages {
			return 0, 0, fmt.Errorf("storage: overlay for unallocated page %d of %d", id, numPages)
		}
	}
	p.ov.mu.Lock()
	defer p.ov.mu.Unlock()
	if p.ov.versions == nil {
		p.ov.versions = make(map[PageID][]pageVersion)
	}
	next := p.epoch.Load() + 1
	for id, buf := range pages {
		data := make([]byte, ps)
		copy(data, buf)
		if len(p.ov.versions[id]) == 0 {
			p.ov.overlaid.Add(1)
		}
		p.ov.versions[id] = append(p.ov.versions[id], pageVersion{epoch: next, frame: newFrame(id, data, nil)})
	}
	p.epoch.Store(next)
	return next, p.ov.compactLocked(next), nil
}

// PinEpoch registers an external reader (a snapshot handle) at epoch,
// keeping its overlay versions resolvable until UnpinEpoch. It reports
// whether the epoch is still reachable.
func (p *Pager) PinEpoch(epoch uint64) bool { return p.ov.pin(epoch) }

// UnpinEpoch releases a PinEpoch registration.
func (p *Pager) UnpinEpoch(epoch uint64) { p.ov.unpin(epoch) }
