package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// RID identifies a record inside a HeapFile: a page and a slot within it.
// RIDs order records physically: scanning from one RID to a later one walks
// contiguous pages, which is exactly what the paper's subfield leaf entries
// (ptr_start, ptr_end) exploit for sequential I/O.
type RID struct {
	Page PageID
	Slot uint16
}

// Less reports whether r precedes o in physical order.
func (r RID) Less(o RID) bool {
	if r.Page != o.Page {
		return r.Page < o.Page
	}
	return r.Slot < o.Slot
}

// String implements fmt.Stringer.
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// Page layout (little endian):
//
//	[0:2)  numSlots
//	[2:4)  freeStart — offset of the first unused data byte
//	then record payloads growing upward from offset 4,
//	and the slot directory growing downward from the page end,
//	4 bytes per slot: uint16 offset, uint16 length.
const (
	pageHeaderSize = 4
	slotEntrySize  = 4
)

// ErrRecordTooLarge is returned when a record cannot fit in an empty page.
var ErrRecordTooLarge = errors.New("storage: record too large for page")

// ErrBadRID is returned when a RID does not address a stored record.
var ErrBadRID = errors.New("storage: invalid record id")

// HeapFile stores variable-length records in slotted pages, append-only.
// fielddb stores field cells in a HeapFile in Hilbert order, so that the
// cells of one subfield occupy a contiguous run of pages.
type HeapFile struct {
	pager    *Pager
	pages    []PageID // pages of this file, in append order
	curBuf   []byte   // working copy of the last page
	curDirty bool
	count    int  // total records
	readOnly bool // reopened from a catalog; appends rejected
}

// NewHeapFile creates an empty heap file on the given pager.
func NewHeapFile(pager *Pager) *HeapFile {
	return &HeapFile{pager: pager}
}

// OpenHeapFile reopens a heap file from its page list and record count, as
// recorded in a catalog. The file is read-only in spirit: appending after
// reopening would clobber the tail page, so Append returns an error.
func OpenHeapFile(pager *Pager, pages []PageID, count int) *HeapFile {
	own := make([]PageID, len(pages))
	copy(own, pages)
	return &HeapFile{pager: pager, pages: own, count: count, readOnly: true}
}

// Count returns the number of records appended so far.
func (h *HeapFile) Count() int { return h.count }

// NumPages returns the number of pages the file occupies.
func (h *HeapFile) NumPages() int { return len(h.pages) }

// Pages returns the file's page ids in physical order. The slice must not be
// modified.
func (h *HeapFile) Pages() []PageID { return h.pages }

// Append stores rec and returns its RID. Records are packed into the current
// tail page until it is full.
func (h *HeapFile) Append(rec []byte) (RID, error) {
	if h.readOnly {
		return RID{}, errors.New("storage: heap file reopened read-only")
	}
	ps := h.pager.PageSize()
	if len(rec)+pageHeaderSize+slotEntrySize > ps {
		return RID{}, fmt.Errorf("%w: %d bytes, page size %d", ErrRecordTooLarge, len(rec), ps)
	}
	if h.curBuf == nil || !h.fits(len(rec)) {
		if err := h.Flush(); err != nil {
			return RID{}, err
		}
		id, err := h.pager.Alloc()
		if err != nil {
			return RID{}, err
		}
		h.pages = append(h.pages, id)
		h.curBuf = make([]byte, ps)
		binary.LittleEndian.PutUint16(h.curBuf[2:4], pageHeaderSize)
	}
	buf := h.curBuf
	n := binary.LittleEndian.Uint16(buf[0:2])
	free := binary.LittleEndian.Uint16(buf[2:4])
	copy(buf[free:], rec)
	slotOff := len(buf) - int(n+1)*slotEntrySize
	binary.LittleEndian.PutUint16(buf[slotOff:], free)
	binary.LittleEndian.PutUint16(buf[slotOff+2:], uint16(len(rec)))
	binary.LittleEndian.PutUint16(buf[0:2], n+1)
	binary.LittleEndian.PutUint16(buf[2:4], free+uint16(len(rec)))
	h.curDirty = true
	h.count++
	return RID{Page: h.pages[len(h.pages)-1], Slot: n}, nil
}

// fits reports whether a record of the given length fits in the tail page.
func (h *HeapFile) fits(recLen int) bool {
	buf := h.curBuf
	n := int(binary.LittleEndian.Uint16(buf[0:2]))
	free := int(binary.LittleEndian.Uint16(buf[2:4]))
	dirStart := len(buf) - (n+1)*slotEntrySize
	return free+recLen <= dirStart
}

// Flush writes the tail page to disk if it has unsaved records.
func (h *HeapFile) Flush() error {
	if h.curBuf == nil || !h.curDirty {
		return nil
	}
	if err := h.pager.WritePage(h.pages[len(h.pages)-1], h.curBuf); err != nil {
		return err
	}
	h.curDirty = false
	return nil
}

// Get reads the record at rid, charged to the pager's own accounting.
func (h *HeapFile) Get(rid RID, buf []byte) ([]byte, error) {
	return h.GetCtx(h.pager, rid, buf)
}

// GetCtx reads the record at rid through r — a per-query execution context
// or the shared pager — so the (typically random) page access is charged to
// that reader's accounting. When r supports zero-copy views, only the record
// itself is copied into buf (grown if needed) instead of the whole page; the
// returned slice is valid until the caller's next use of buf.
func (h *HeapFile) GetCtx(r PageReader, rid RID, buf []byte) ([]byte, error) {
	if v, ok := r.(PageViewer); ok {
		f, err := v.ViewPage(rid.Page)
		if err != nil {
			return nil, err
		}
		rec, err := recordInPage(f.Data(), rid.Slot)
		if err != nil {
			f.Release()
			return nil, err
		}
		if cap(buf) < len(rec) {
			buf = make([]byte, len(rec))
		}
		buf = buf[:len(rec)]
		copy(buf, rec)
		f.Release()
		return buf, nil
	}
	if cap(buf) < r.PageSize() {
		buf = make([]byte, r.PageSize())
	}
	buf = buf[:r.PageSize()]
	if err := r.ReadPage(rid.Page, buf); err != nil {
		return nil, err
	}
	return recordInPage(buf, rid.Slot)
}

// RecordInPage extracts slot s from a heap-file page image — the slot
// arithmetic behind GetCtx, exported for readers that already hold a page
// (the sidecar-filtered refinement step fetches whole survivor pages through
// ReadRun and picks out the surviving records by slot).
func RecordInPage(buf []byte, s uint16) ([]byte, error) {
	return recordInPage(buf, s)
}

// PatchRecordInPage overwrites slot s of a heap-file page image with rec,
// which must have exactly the stored record's length — the rewrite-in-place
// contract of value updates, where a cell's geometry (and so its encoded
// size) never changes. The page image is modified in place; callers stage it
// as a copy-on-write overlay rather than writing the base page.
func PatchRecordInPage(buf []byte, s uint16, rec []byte) error {
	old, err := recordInPage(buf, s)
	if err != nil {
		return err
	}
	if len(old) != len(rec) {
		return fmt.Errorf("storage: patch record length %d != stored %d", len(rec), len(old))
	}
	copy(old, rec)
	return nil
}

// recordInPage extracts slot s from a page image.
func recordInPage(buf []byte, s uint16) ([]byte, error) {
	n := binary.LittleEndian.Uint16(buf[0:2])
	if s >= n {
		return nil, fmt.Errorf("%w: slot %d of %d", ErrBadRID, s, n)
	}
	slotOff := len(buf) - int(s+1)*slotEntrySize
	off := binary.LittleEndian.Uint16(buf[slotOff:])
	length := binary.LittleEndian.Uint16(buf[slotOff+2:])
	if int(off)+int(length) > len(buf) {
		return nil, fmt.Errorf("%w: slot %d out of page bounds", ErrBadRID, s)
	}
	return buf[off : off+length], nil
}

// Scan visits every record in physical order. Each page is read exactly once
// through the pager — consecutive pages are charged at sequential cost, which
// is what makes LinearScan cheaper per page than random candidate fetches.
// The callback receives the record's RID and payload (valid only during the
// call). Returning false stops the scan early.
func (h *HeapFile) Scan(fn func(rid RID, rec []byte) bool) error {
	return h.ScanPages(0, len(h.pages)-1, fn)
}

// ScanCtx is Scan with the page reads charged to r.
func (h *HeapFile) ScanCtx(r PageReader, fn func(rid RID, rec []byte) bool) error {
	return h.ScanPagesCtx(r, 0, len(h.pages)-1, fn)
}

// ScanPages visits records on the file's pages with index in [first, last]
// (inclusive, indices into the file's page list). Used by the estimation step
// to fetch exactly the cell run of one subfield.
func (h *HeapFile) ScanPages(first, last int, fn func(rid RID, rec []byte) bool) error {
	return h.ScanPagesCtx(h.pager, first, last, fn)
}

// ScanPagesCtx is ScanPages with the page reads charged to r, so concurrent
// queries — and the workers of one parallel refinement step — each account
// their own sequential run. When the range is physically contiguous and r
// supports run reads (Pager and QueryCtx both do), the whole run is fetched
// through ReadRun: one batched pool interaction and at most one disk call
// per missing sub-run, with per-page charges identical to this loop.
func (h *HeapFile) ScanPagesCtx(r PageReader, first, last int, fn func(rid RID, rec []byte) bool) error {
	if err := h.Flush(); err != nil {
		return err
	}
	if first < 0 {
		first = 0
	}
	if last >= len(h.pages) {
		last = len(h.pages) - 1
	}
	if first > last {
		return nil
	}
	if rr, ok := r.(RunReader); ok && last > first && h.runContiguous(first, last) {
		var pageErr error
		err := rr.ReadRun(h.pages[first], h.pages[last], func(id PageID, page []byte) bool {
			more, err := scanPageRecords(id, page, fn)
			if err != nil {
				pageErr = err
				return false
			}
			return more
		})
		if err != nil {
			return err
		}
		return pageErr
	}
	buf := make([]byte, r.PageSize())
	for pi := first; pi <= last; pi++ {
		id := h.pages[pi]
		if err := r.ReadPage(id, buf); err != nil {
			return err
		}
		more, err := scanPageRecords(id, buf, fn)
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
	return nil
}

// scanPageRecords visits every record of one page image in slot order. It
// returns false (no error) when fn stopped the scan.
func scanPageRecords(id PageID, page []byte, fn func(rid RID, rec []byte) bool) (bool, error) {
	n := binary.LittleEndian.Uint16(page[0:2])
	for s := uint16(0); s < n; s++ {
		rec, err := recordInPage(page, s)
		if err != nil {
			return false, err
		}
		if !fn(RID{Page: id, Slot: s}, rec) {
			return false, nil
		}
	}
	return true, nil
}

// runContiguous reports whether the file's pages with indices [first, last]
// occupy consecutive disk pages. Heap files built on a fresh disk always
// are; interleaved allocation (heap pages mixed with index pages) falls back
// to the per-page scan.
func (h *HeapFile) runContiguous(first, last int) bool {
	return h.pages[last]-h.pages[first] == PageID(last-first) && h.ascending(first, last)
}

// ascending reports whether pages[first..last] strictly increase — together
// with the endpoint difference check this proves the run is consecutive.
func (h *HeapFile) ascending(first, last int) bool {
	for i := first; i < last; i++ {
		if h.pages[i+1] != h.pages[i]+1 {
			return false
		}
	}
	return true
}

// PageIndex returns the position of page id within the file, or -1.
func (h *HeapFile) PageIndex(id PageID) int {
	// Pages are allocated in ascending order from a fresh disk, so binary
	// search; fall back to linear scan if the invariant does not hold.
	lo, hi := 0, len(h.pages)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch {
		case h.pages[mid] == id:
			return mid
		case h.pages[mid] < id:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	for i, p := range h.pages {
		if p == id {
			return i
		}
	}
	return -1
}
