package storage

import (
	"errors"
	"testing"
)

// faultDisk wraps a Disk and fails operations once armed.
type faultDisk struct {
	Disk
	failReads  bool
	failWrites bool
	failAllocs bool
	readsLeft  int // reads allowed before failing (when failReads)
}

var errInjected = errors.New("injected fault")

func (d *faultDisk) ReadPage(id PageID, buf []byte) error {
	if d.failReads {
		if d.readsLeft <= 0 {
			return errInjected
		}
		d.readsLeft--
	}
	return d.Disk.ReadPage(id, buf)
}

func (d *faultDisk) WritePage(id PageID, buf []byte) error {
	if d.failWrites {
		return errInjected
	}
	return d.Disk.WritePage(id, buf)
}

func (d *faultDisk) Alloc() (PageID, error) {
	if d.failAllocs {
		return InvalidPage, errInjected
	}
	return d.Disk.Alloc()
}

func TestPagerPropagatesReadErrors(t *testing.T) {
	mem := NewMemDisk(64)
	mem.Alloc()
	fd := &faultDisk{Disk: mem, failReads: true}
	p := NewPager(fd, DefaultDiskModel, 0)
	buf := make([]byte, 64)
	if err := p.ReadPage(0, buf); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v", err)
	}
	// A failed read must not be charged.
	if st := p.Stats(); st.Reads != 0 {
		t.Fatalf("failed read counted: %+v", st)
	}
}

func TestPagerPropagatesWriteAndAllocErrors(t *testing.T) {
	mem := NewMemDisk(64)
	mem.Alloc()
	fd := &faultDisk{Disk: mem, failWrites: true, failAllocs: true}
	p := NewPager(fd, DefaultDiskModel, 0)
	if err := p.WritePage(0, make([]byte, 64)); !errors.Is(err, errInjected) {
		t.Fatalf("write err = %v", err)
	}
	if _, err := p.Alloc(); !errors.Is(err, errInjected) {
		t.Fatalf("alloc err = %v", err)
	}
	if st := p.Stats(); st.Writes != 0 {
		t.Fatalf("failed write counted: %+v", st)
	}
}

func TestHeapFilePropagatesAllocFailure(t *testing.T) {
	mem := NewMemDisk(64)
	fd := &faultDisk{Disk: mem, failAllocs: true}
	p := NewPager(fd, DefaultDiskModel, 0)
	h := NewHeapFile(p)
	if _, err := h.Append([]byte("x")); !errors.Is(err, errInjected) {
		t.Fatalf("append err = %v", err)
	}
}

func TestHeapFileScanPropagatesReadFailure(t *testing.T) {
	mem := NewMemDisk(128)
	fd := &faultDisk{Disk: mem}
	p := NewPager(fd, DefaultDiskModel, 0)
	h := NewHeapFile(p)
	for i := 0; i < 60; i++ {
		if _, err := h.Append([]byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	fd.failReads = true
	fd.readsLeft = 1 // first page succeeds, second fails
	err := h.Scan(func(RID, []byte) bool { return true })
	if !errors.Is(err, errInjected) {
		t.Fatalf("scan err = %v", err)
	}
}

func TestPagerCacheServesDespiteDiskFault(t *testing.T) {
	// Once cached, a page stays readable even if the disk starts failing —
	// and the hit is not charged.
	mem := NewMemDisk(64)
	mem.Alloc()
	fd := &faultDisk{Disk: mem, failReads: true, readsLeft: 1}
	p := NewPager(fd, DefaultDiskModel, 4)
	buf := make([]byte, 64)
	if err := p.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := p.ReadPage(0, buf); err != nil {
		t.Fatalf("cached read failed: %v", err)
	}
	st := p.Stats()
	if st.Reads != 1 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
