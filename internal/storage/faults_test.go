package storage

import (
	"errors"
	"testing"
)

// faultDisk wraps a Disk and fails operations once armed.
type faultDisk struct {
	Disk
	failReads  bool
	failWrites bool
	failAllocs bool
	readsLeft  int // reads allowed before failing (when failReads)
}

var errInjected = errors.New("injected fault")

func (d *faultDisk) ReadPage(id PageID, buf []byte) error {
	if d.failReads {
		if d.readsLeft <= 0 {
			return errInjected
		}
		d.readsLeft--
	}
	return d.Disk.ReadPage(id, buf)
}

func (d *faultDisk) WritePage(id PageID, buf []byte) error {
	if d.failWrites {
		return errInjected
	}
	return d.Disk.WritePage(id, buf)
}

func (d *faultDisk) Alloc() (PageID, error) {
	if d.failAllocs {
		return InvalidPage, errInjected
	}
	return d.Disk.Alloc()
}

func TestPagerPropagatesReadErrors(t *testing.T) {
	mem := NewMemDisk(64)
	mem.Alloc()
	fd := &faultDisk{Disk: mem, failReads: true}
	p := NewPager(fd, DefaultDiskModel, 0)
	buf := make([]byte, 64)
	if err := p.ReadPage(0, buf); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v", err)
	}
	// A failed read must not be charged.
	if st := p.Stats(); st.Reads != 0 {
		t.Fatalf("failed read counted: %+v", st)
	}
}

func TestPagerPropagatesWriteAndAllocErrors(t *testing.T) {
	mem := NewMemDisk(64)
	mem.Alloc()
	fd := &faultDisk{Disk: mem, failWrites: true, failAllocs: true}
	p := NewPager(fd, DefaultDiskModel, 0)
	if err := p.WritePage(0, make([]byte, 64)); !errors.Is(err, errInjected) {
		t.Fatalf("write err = %v", err)
	}
	if _, err := p.Alloc(); !errors.Is(err, errInjected) {
		t.Fatalf("alloc err = %v", err)
	}
	if st := p.Stats(); st.Writes != 0 {
		t.Fatalf("failed write counted: %+v", st)
	}
}

func TestHeapFilePropagatesAllocFailure(t *testing.T) {
	mem := NewMemDisk(64)
	fd := &faultDisk{Disk: mem, failAllocs: true}
	p := NewPager(fd, DefaultDiskModel, 0)
	h := NewHeapFile(p)
	if _, err := h.Append([]byte("x")); !errors.Is(err, errInjected) {
		t.Fatalf("append err = %v", err)
	}
}

func TestHeapFileScanPropagatesReadFailure(t *testing.T) {
	mem := NewMemDisk(128)
	fd := &faultDisk{Disk: mem}
	p := NewPager(fd, DefaultDiskModel, 0)
	h := NewHeapFile(p)
	for i := 0; i < 60; i++ {
		if _, err := h.Append([]byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	fd.failReads = true
	fd.readsLeft = 1 // first page succeeds, second fails
	err := h.Scan(func(RID, []byte) bool { return true })
	if !errors.Is(err, errInjected) {
		t.Fatalf("scan err = %v", err)
	}
}

func TestSidecarScanPropagatesReadFault(t *testing.T) {
	mem := NewMemDisk(128)
	fd := &faultDisk{Disk: mem}
	p := NewPager(fd, DefaultDiskModel, 0)
	n := SidecarEntriesPerPage(128)*2 + 3 // three sidecar pages
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i := range lo {
		lo[i], hi[i] = float64(i), float64(i)+0.5
	}
	sc, err := BuildIntervalSidecar(p, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	fd.failReads = true
	fd.readsLeft = 1 // first sidecar page succeeds, second fails
	qc := p.BeginQuery()
	defer qc.Release()
	err = sc.ScanRange(qc, 0, n, func(int, []float64, []float64) bool { return true })
	if !errors.Is(err, errInjected) {
		t.Fatalf("sidecar scan err = %v", err)
	}
	// The failed run charges at most the successfully read prefix — never
	// the page whose read faulted.
	if st := qc.LocalStats(); st.Reads > 1 {
		t.Fatalf("failed sidecar read charged: %+v", st)
	}
}

func TestOverlayStagingFaultLeavesLiveEpochIntact(t *testing.T) {
	// The update write path stages copy-on-write page images by reading the
	// current version of each page it patches. A read fault (a torn or short
	// read surfaces as an error from the disk) during staging must abort the
	// batch before CommitOverlays, leaving the live epoch and every page byte
	// untouched.
	mem := NewMemDisk(64)
	fd := &faultDisk{Disk: mem}
	p := NewPager(fd, DefaultDiskModel, 0)
	var ids []PageID
	for i := 0; i < 2; i++ {
		id, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		img := make([]byte, 64)
		img[0] = byte(0x10 + i)
		if err := p.WritePage(id, img); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	fd.failReads = true
	fd.readsLeft = 1 // the second staged page read fails mid-batch
	qc := p.BeginQuery()
	staged := make(map[PageID][]byte)
	var stageErr error
	for _, id := range ids {
		buf := make([]byte, 64)
		if stageErr = qc.ReadPage(id, buf); stageErr != nil {
			break
		}
		buf[1] = 0xFF
		staged[id] = buf
	}
	qc.Release()
	if !errors.Is(stageErr, errInjected) {
		t.Fatalf("staging err = %v", stageErr)
	}
	// The batch aborts without committing; the store is exactly as built.
	if p.CurrentEpoch() != 0 || p.OverlaidPages() != 0 {
		t.Fatalf("aborted batch moved the store: epoch %d, %d overlaid",
			p.CurrentEpoch(), p.OverlaidPages())
	}
	fd.failReads = false
	buf := make([]byte, 64)
	for i, id := range ids {
		if err := p.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(0x10+i) || buf[1] != 0 {
			t.Fatalf("page %d corrupted: % x", id, buf[:2])
		}
	}
}

func TestPagerCacheServesDespiteDiskFault(t *testing.T) {
	// Once cached, a page stays readable even if the disk starts failing —
	// and the hit is not charged.
	mem := NewMemDisk(64)
	mem.Alloc()
	fd := &faultDisk{Disk: mem, failReads: true, readsLeft: 1}
	p := NewPager(fd, DefaultDiskModel, 4)
	buf := make([]byte, 64)
	if err := p.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := p.ReadPage(0, buf); err != nil {
		t.Fatalf("cached read failed: %v", err)
	}
	st := p.Stats()
	if st.Reads != 1 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
