package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"
)

func TestMemDiskBasics(t *testing.T) {
	d := NewMemDisk(128)
	if d.PageSize() != 128 {
		t.Fatalf("PageSize = %d", d.PageSize())
	}
	if d.NumPages() != 0 {
		t.Fatal("fresh disk has pages")
	}
	id, err := d.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 || d.NumPages() != 1 {
		t.Fatalf("Alloc = %d, NumPages = %d", id, d.NumPages())
	}
	w := make([]byte, 128)
	copy(w, "hello")
	if err := d.WritePage(id, w); err != nil {
		t.Fatal(err)
	}
	r := make([]byte, 128)
	if err := d.ReadPage(id, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, w) {
		t.Fatal("read != write")
	}
	if err := d.ReadPage(7, r); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	if err := d.WritePage(7, w); err == nil {
		t.Fatal("out-of-range write succeeded")
	}
}

func TestMemDiskZeroPageSizeDefaults(t *testing.T) {
	d := NewMemDisk(0)
	if d.PageSize() != DefaultPageSize {
		t.Fatalf("PageSize = %d, want %d", d.PageSize(), DefaultPageSize)
	}
}

func TestFileDiskRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.db")
	d, err := OpenFileDisk(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, err := d.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 256)
		copy(buf, fmt.Sprintf("page-%d", i))
		if err := d.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and verify persistence.
	d2, err := OpenFileDisk(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumPages() != 5 {
		t.Fatalf("NumPages after reopen = %d", d2.NumPages())
	}
	buf := make([]byte, 256)
	for i, id := range ids {
		if err := d2.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("page-%d", i)
		if string(buf[:len(want)]) != want {
			t.Fatalf("page %d content %q", id, buf[:len(want)])
		}
	}
}

func TestFileDiskRejectsTornFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.db")
	d, err := OpenFileDisk(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Alloc(); err != nil {
		t.Fatal(err)
	}
	d.Close()
	// Reopen with mismatching page size: 256 not divisible by 100.
	if _, err := OpenFileDisk(path, 100); err == nil {
		t.Fatal("expected error for torn file")
	}
}

func TestPagerSequentialVsRandomAccounting(t *testing.T) {
	d := NewMemDisk(64)
	for i := 0; i < 10; i++ {
		d.Alloc()
	}
	model := DiskModel{RandomRead: 10 * time.Millisecond, SequentialRead: 1 * time.Millisecond}
	p := NewPager(d, model, 0)
	buf := make([]byte, 64)
	// 0,1,2,3 -> 1 random + 3 sequential.
	for i := PageID(0); i < 4; i++ {
		if err := p.ReadPage(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Jump to 9 -> random.
	p.ReadPage(9, buf)
	st := p.Stats()
	if st.Reads != 5 || st.SeqReads != 3 || st.RandReads != 2 {
		t.Fatalf("stats = %+v", st)
	}
	want := 2*model.RandomRead + 3*model.SequentialRead
	if st.SimElapsed != want {
		t.Fatalf("SimElapsed = %v, want %v", st.SimElapsed, want)
	}
	p.ResetStats()
	if p.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero counters")
	}
	// After a reset the first read is random again.
	p.ReadPage(4, buf)
	if st := p.Stats(); st.RandReads != 1 {
		t.Fatalf("first read after reset should be random: %+v", st)
	}
}

func TestPagerBufferPool(t *testing.T) {
	d := NewMemDisk(64)
	for i := 0; i < 4; i++ {
		d.Alloc()
	}
	p := NewPager(d, DefaultDiskModel, 2)
	buf := make([]byte, 64)
	p.ReadPage(0, buf) // miss
	p.ReadPage(0, buf) // hit
	p.ReadPage(1, buf) // miss
	p.ReadPage(0, buf) // hit
	p.ReadPage(2, buf) // miss, evicts LRU (page 1)
	p.ReadPage(1, buf) // miss again
	st := p.Stats()
	if st.Reads != 4 || st.CacheHits != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Writes update cached copies.
	w := make([]byte, 64)
	copy(w, "fresh")
	if err := p.WritePage(1, w); err != nil {
		t.Fatal(err)
	}
	p.ReadPage(1, buf)
	if string(buf[:5]) != "fresh" {
		t.Fatal("cached page not updated by write")
	}
	p.DropCache()
	p.ReadPage(1, buf)
	if got := p.Stats().CacheHits; got != 3 {
		t.Fatalf("hits after DropCache = %d, want 3 (read must miss)", got)
	}
}

func TestStatsArithmetic(t *testing.T) {
	a := Stats{Reads: 5, SeqReads: 3, RandReads: 2, Writes: 1, CacheHits: 4, SimElapsed: time.Second}
	b := Stats{Reads: 2, SeqReads: 1, RandReads: 1, Writes: 1, CacheHits: 1, SimElapsed: time.Millisecond}
	d := a.Sub(b)
	if d.Reads != 3 || d.SeqReads != 2 || d.RandReads != 1 || d.Writes != 0 || d.CacheHits != 3 {
		t.Fatalf("Sub = %+v", d)
	}
	s := b.Add(d)
	if s != a {
		t.Fatalf("Add(Sub) != original: %+v", s)
	}
	if a.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestHeapFileAppendGet(t *testing.T) {
	d := NewMemDisk(128)
	p := NewPager(d, DefaultDiskModel, 0)
	h := NewHeapFile(p)
	var rids []RID
	var recs [][]byte
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		rec := make([]byte, 10+rng.Intn(40))
		rng.Read(rec)
		rid, err := h.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		recs = append(recs, rec)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for i, rid := range rids {
		got, err := h.Get(rid, buf)
		if err != nil {
			t.Fatalf("Get(%v): %v", rid, err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	// RIDs are physically ordered by append order.
	for i := 1; i < len(rids); i++ {
		if !rids[i-1].Less(rids[i]) {
			t.Fatalf("RIDs out of order: %v then %v", rids[i-1], rids[i])
		}
	}
}

func TestHeapFileScan(t *testing.T) {
	d := NewMemDisk(128)
	p := NewPager(d, DefaultDiskModel, 0)
	h := NewHeapFile(p)
	for i := 0; i < 50; i++ {
		if _, err := h.Append([]byte(fmt.Sprintf("rec-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var seen []string
	err := h.Scan(func(rid RID, rec []byte) bool {
		seen = append(seen, string(rec))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 50 {
		t.Fatalf("scanned %d records", len(seen))
	}
	for i, s := range seen {
		if want := fmt.Sprintf("rec-%02d", i); s != want {
			t.Fatalf("record %d = %q, want %q", i, s, want)
		}
	}
	// Early stop.
	count := 0
	h.Scan(func(rid RID, rec []byte) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop visited %d", count)
	}
	// A full scan reads pages sequentially: all but the first read must be
	// charged at sequential cost.
	p.ResetStats()
	h.Scan(func(RID, []byte) bool { return true })
	st := p.Stats()
	if st.RandReads != 1 || st.SeqReads != st.Reads-1 {
		t.Fatalf("scan I/O pattern not sequential: %+v", st)
	}
}

func TestHeapFileScanPagesSubrange(t *testing.T) {
	d := NewMemDisk(128)
	p := NewPager(d, DefaultDiskModel, 0)
	h := NewHeapFile(p)
	for i := 0; i < 60; i++ {
		h.Append([]byte(fmt.Sprintf("rec-%02d", i)))
	}
	h.Flush()
	if h.NumPages() < 3 {
		t.Skipf("need >= 3 pages, got %d", h.NumPages())
	}
	var count int
	h.ScanPages(1, 1, func(RID, []byte) bool { count++; return true })
	if count == 0 || count >= 60 {
		t.Fatalf("mid-page scan visited %d", count)
	}
	// Out-of-range bounds are clamped.
	total := 0
	h.ScanPages(-5, 100, func(RID, []byte) bool { total++; return true })
	if total != 60 {
		t.Fatalf("clamped scan visited %d", total)
	}
}

func TestHeapFileRejectsOversizeRecord(t *testing.T) {
	d := NewMemDisk(64)
	p := NewPager(d, DefaultDiskModel, 0)
	h := NewHeapFile(p)
	if _, err := h.Append(make([]byte, 64)); err == nil {
		t.Fatal("oversize record accepted")
	}
}

func TestHeapFileGetBadSlot(t *testing.T) {
	d := NewMemDisk(128)
	p := NewPager(d, DefaultDiskModel, 0)
	h := NewHeapFile(p)
	rid, _ := h.Append([]byte("x"))
	h.Flush()
	if _, err := h.Get(RID{Page: rid.Page, Slot: 99}, nil); err == nil {
		t.Fatal("bad slot accepted")
	}
}

func TestHeapFilePageIndex(t *testing.T) {
	d := NewMemDisk(128)
	p := NewPager(d, DefaultDiskModel, 0)
	h := NewHeapFile(p)
	for i := 0; i < 200; i++ {
		h.Append([]byte("0123456789abcdef"))
	}
	h.Flush()
	for i, id := range h.Pages() {
		if got := h.PageIndex(id); got != i {
			t.Fatalf("PageIndex(%d) = %d, want %d", id, got, i)
		}
	}
	if h.PageIndex(PageID(99999)) != -1 {
		t.Fatal("PageIndex of unknown page != -1")
	}
}

func TestRIDLess(t *testing.T) {
	a := RID{Page: 1, Slot: 5}
	b := RID{Page: 1, Slot: 6}
	c := RID{Page: 2, Slot: 0}
	if !a.Less(b) || !b.Less(c) || b.Less(a) || a.Less(a) {
		t.Fatal("RID ordering broken")
	}
	if a.String() != "1:5" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestSnapshotTo(t *testing.T) {
	src := NewMemDisk(128)
	p := NewPager(src, DefaultDiskModel, 0)
	for i := 0; i < 5; i++ {
		id, _ := p.Alloc()
		buf := make([]byte, 128)
		copy(buf, fmt.Sprintf("page-%d", i))
		p.WritePage(id, buf)
	}
	before := p.Stats()
	dst := NewMemDisk(128)
	if err := p.SnapshotTo(dst); err != nil {
		t.Fatal(err)
	}
	// Snapshot bypasses accounting.
	if p.Stats() != before {
		t.Fatalf("snapshot changed stats: %v -> %v", before, p.Stats())
	}
	if dst.NumPages() != 5 {
		t.Fatalf("dst pages = %d", dst.NumPages())
	}
	buf := make([]byte, 128)
	for i := 0; i < 5; i++ {
		dst.ReadPage(PageID(i), buf)
		want := fmt.Sprintf("page-%d", i)
		if string(buf[:len(want)]) != want {
			t.Fatalf("page %d content %q", i, buf[:len(want)])
		}
	}
	// Mismatched page size rejected.
	if err := p.SnapshotTo(NewMemDisk(64)); err == nil {
		t.Fatal("page size mismatch accepted")
	}
	// Non-empty destination rejected.
	if err := p.SnapshotTo(dst); err == nil {
		t.Fatal("non-empty destination accepted")
	}
}

func TestOpenHeapFileReadOnly(t *testing.T) {
	d := NewMemDisk(128)
	p := NewPager(d, DefaultDiskModel, 0)
	h := NewHeapFile(p)
	for i := 0; i < 20; i++ {
		h.Append([]byte(fmt.Sprintf("rec-%02d", i)))
	}
	h.Flush()
	h2 := OpenHeapFile(p, h.Pages(), h.Count())
	if h2.Count() != 20 || h2.NumPages() != h.NumPages() {
		t.Fatalf("reopened: %d recs / %d pages", h2.Count(), h2.NumPages())
	}
	var got []string
	h2.Scan(func(_ RID, rec []byte) bool { got = append(got, string(rec)); return true })
	if len(got) != 20 || got[0] != "rec-00" || got[19] != "rec-19" {
		t.Fatalf("reopened scan = %v", got)
	}
	if _, err := h2.Append([]byte("x")); err == nil {
		t.Fatal("append to read-only heap accepted")
	}
}
