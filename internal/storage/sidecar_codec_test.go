package storage

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"fielddb/internal/field"
	"fielddb/internal/geom"
)

func newSidecarPager(t *testing.T) *Pager {
	t.Helper()
	return NewPager(NewMemDisk(DefaultPageSize), DefaultDiskModel, 0)
}

// lcg is a tiny deterministic generator so adversarial columns are
// reproducible without a seed source.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

func (l *lcg) float() float64 {
	return math.Float64frombits(l.next()>>12|0x3FF0000000000000) - 1 // [0,1)
}

// adversarialColumns builds the named (lo, hi) column pairs the codec must
// round-trip bit-exactly.
func adversarialColumns(n int) map[string][2][]float64 {
	cols := map[string][2][]float64{}
	mk := func(name string, f func(i int) (float64, float64)) {
		lo := make([]float64, n)
		hi := make([]float64, n)
		for i := range lo {
			lo[i], hi[i] = f(i)
		}
		cols[name] = [2][]float64{lo, hi}
	}
	mk("all-equal", func(int) (float64, float64) { return 731.25, 731.25 })
	mk("monotone", func(i int) (float64, float64) { return float64(i), float64(i + 2) })
	mk("monotone-fractional", func(i int) (float64, float64) {
		return 200 + 0.03125*float64(i), 200.5 + 0.03125*float64(i)
	})
	mk("extreme", func(i int) (float64, float64) {
		switch i % 6 {
		case 0:
			return -math.MaxFloat64, math.MaxFloat64
		case 1:
			return math.SmallestNonzeroFloat64, 1
		case 2:
			return math.Copysign(0, -1), 0
		case 3:
			return -1e300, 1e-300
		case 4:
			return math.Inf(-1), math.Inf(1)
		default:
			return -0.1, 0.1
		}
	})
	r := lcg(4217)
	mk("random-bits", func(int) (float64, float64) {
		// Raw bit patterns, NaN payloads included: the codec works on
		// uint64 images, so even non-values must survive.
		return math.Float64frombits(r.next()), math.Float64frombits(r.next())
	})
	r2 := lcg(9)
	mk("terrain-like", func(i int) (float64, float64) {
		base := 800 + 400*math.Sin(float64(i)/37) + 25*r2.float()
		return base, base + 10*r2.float()
	})
	return cols
}

func scanAll(t *testing.T, s *IntervalSidecar, r PageReader) (lo, hi []float64) {
	t.Helper()
	next := 0
	err := s.ScanRange(r, 0, s.Count(), func(base int, l, h []float64) bool {
		if base != next {
			t.Fatalf("scan base %d, want %d", base, next)
		}
		lo = append(lo, l...)
		hi = append(hi, h...)
		next = base + len(l)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return lo, hi
}

func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestSidecarCodecRoundTrip checks both codecs reproduce every adversarial
// column bit-exactly, across full scans, subrange scans, and reopen.
func TestSidecarCodecRoundTrip(t *testing.T) {
	for _, codec := range []string{SidecarCodecRaw, SidecarCodecPacked} {
		for name, cols := range adversarialColumns(700) {
			t.Run(codec+"/"+name, func(t *testing.T) {
				lo, hi := cols[0], cols[1]
				p := newSidecarPager(t)
				s, err := BuildIntervalSidecarWith(p, lo, hi, codec)
				if err != nil {
					t.Fatal(err)
				}
				if s.Codec() != codec {
					t.Fatalf("codec %q, want %q", s.Codec(), codec)
				}
				gotLo, gotHi := scanAll(t, s, p)
				if !sameBits(gotLo, lo) || !sameBits(gotHi, hi) {
					t.Fatal("full scan not bit-identical to input")
				}
				// Subranges, including ones inside a single page.
				for _, rng := range [][2]int{{0, 1}, {13, 200}, {199, 201}, {650, 700}, {300, 301}} {
					err := s.ScanRange(p, rng[0], rng[1], func(base int, l, h []float64) bool {
						for i := range l {
							if math.Float64bits(l[i]) != math.Float64bits(lo[base+i]) ||
								math.Float64bits(h[i]) != math.Float64bits(hi[base+i]) {
								t.Fatalf("subrange %v: entry %d differs", rng, base+i)
							}
						}
						return true
					})
					if err != nil {
						t.Fatal(err)
					}
				}
				// Reopen from catalog geometry.
				var ro *IntervalSidecar
				if codec == SidecarCodecRaw {
					ro, err = OpenIntervalSidecar(p, s.FirstPage(), s.NumPages(), s.Count())
				} else {
					ro, err = OpenIntervalSidecarPacked(p, s.FirstPage(), s.Count(), s.PageFirstPositions())
				}
				if err != nil {
					t.Fatal(err)
				}
				gotLo, gotHi = scanAll(t, ro, p)
				if !sameBits(gotLo, lo) || !sameBits(gotHi, hi) {
					t.Fatal("reopened scan not bit-identical to input")
				}
			})
		}
	}
}

// TestSidecarPageBoundaries pins the page-boundary arithmetic at exactly
// one raw page, one page plus one entry, and exactly two pages — the counts
// where an off-by-one in PageFor or ScanRange trimming would show.
func TestSidecarPageBoundaries(t *testing.T) {
	per := SidecarEntriesPerPage(DefaultPageSize) // 255
	for _, codec := range []string{SidecarCodecRaw, SidecarCodecPacked} {
		for _, n := range []int{per, per + 1, 2 * per} {
			lo := make([]float64, n)
			hi := make([]float64, n)
			r := lcg(uint64(n))
			for i := range lo {
				// Incompressible bits keep the packed codec near raw
				// density, forcing multiple pages for the boundary cases.
				lo[i] = math.Float64frombits(r.next() &^ (1 << 63))
				hi[i] = lo[i] + 1
			}
			p := newSidecarPager(t)
			s, err := BuildIntervalSidecarWith(p, lo, hi, codec)
			if err != nil {
				t.Fatal(err)
			}
			if codec == SidecarCodecRaw {
				wantPages := (n + per - 1) / per
				if s.NumPages() != wantPages {
					t.Fatalf("codec %s n=%d: %d pages, want %d", codec, n, s.NumPages(), wantPages)
				}
			}
			// Every position must map to a page whose decode returns the
			// position's exact values.
			for pos := 0; pos < n; pos++ {
				pid, idx, err := s.PageFor(pos)
				if err != nil {
					t.Fatal(err)
				}
				if pid < s.FirstPage() || pid >= s.FirstPage()+PageID(s.NumPages()) {
					t.Fatalf("pos %d mapped outside segment", pos)
				}
				var got float64
				err = s.ScanRange(p, pos, pos+1, func(base int, l, _ []float64) bool {
					if base != pos || len(l) != 1 {
						t.Fatalf("pos %d: base %d len %d", pos, base, len(l))
					}
					got = l[0]
					return true
				})
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(got) != math.Float64bits(lo[pos]) {
					t.Fatalf("codec %s n=%d pos %d: wrong value", codec, n, pos)
				}
				_ = idx
			}
			if _, _, err := s.PageFor(n); err == nil {
				t.Fatal("PageFor past end succeeded")
			}
			if _, _, err := s.PageFor(-1); err == nil {
				t.Fatal("PageFor(-1) succeeded")
			}
			// Scans crossing each page boundary.
			for pg := 1; pg < s.NumPages(); pg++ {
				var boundary int
				if fp := s.PageFirstPositions(); fp != nil {
					boundary = int(fp[pg])
				} else {
					boundary = pg * per
				}
				count := 0
				err := s.ScanRange(p, boundary-1, boundary+1, func(base int, l, _ []float64) bool {
					count += len(l)
					return true
				})
				if err != nil {
					t.Fatal(err)
				}
				if count != 2 {
					t.Fatalf("boundary scan returned %d entries, want 2", count)
				}
			}
		}
	}
}

// TestSidecarCellIntervalBitIdentity builds the columns the way the engine
// does — CellIntervalFromRecord over encoded cell records — and asserts the
// packed codec reproduces exactly those bits.
func TestSidecarCellIntervalBitIdentity(t *testing.T) {
	const n = 600
	lo := make([]float64, n)
	hi := make([]float64, n)
	r := lcg(77)
	var rec []byte
	for i := 0; i < n; i++ {
		vals := []float64{200 + 1200*r.float(), 200 + 1200*r.float(), 200 + 1200*r.float(), 200 + 1200*r.float()}
		verts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
		rec = field.AppendCell(rec[:0], &field.Cell{ID: field.CellID(i), Vertices: verts, Values: vals})
		iv, err := field.CellIntervalFromRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		lo[i], hi[i] = iv.Lo, iv.Hi
	}
	for _, codec := range []string{SidecarCodecRaw, SidecarCodecPacked} {
		p := newSidecarPager(t)
		s, err := BuildIntervalSidecarWith(p, lo, hi, codec)
		if err != nil {
			t.Fatal(err)
		}
		gotLo, gotHi := scanAll(t, s, p)
		if !sameBits(gotLo, lo) || !sameBits(gotHi, hi) {
			t.Fatalf("codec %s: scan differs from CellIntervalFromRecord bits", codec)
		}
	}
}

// TestSidecarPackedCapacity is the compression claim: on structured columns
// a packed page must hold at least 3× the raw fixed capacity.
func TestSidecarPackedCapacity(t *testing.T) {
	per := SidecarEntriesPerPage(DefaultPageSize)
	for name, cols := range adversarialColumns(3 * 1020) {
		if name != "all-equal" && name != "monotone" && name != "monotone-fractional" {
			continue
		}
		p := newSidecarPager(t)
		s, err := BuildIntervalSidecarWith(p, cols[0], cols[1], SidecarCodecPacked)
		if err != nil {
			t.Fatal(err)
		}
		fp := s.PageFirstPositions()
		if len(fp) < 2 {
			t.Fatalf("%s: want multiple pages", name)
		}
		firstPageEntries := int(fp[1])
		if firstPageEntries < 3*per {
			t.Fatalf("%s: packed page holds %d entries, want >= %d (3x raw)", name, firstPageEntries, 3*per)
		}
		if max := SidecarMaxEntriesPerPage(DefaultPageSize); firstPageEntries > max {
			t.Fatalf("%s: packed page holds %d entries, cap is %d", name, firstPageEntries, max)
		}
	}
}

// TestSidecarPackedPatch patches packed entries in place and checks the
// page re-encodes with every other entry bit-identical; filling a page with
// incompressible patches must fail with ErrSidecarPageFull and leave the
// image untouched.
func TestSidecarPackedPatch(t *testing.T) {
	cols := adversarialColumns(900)["terrain-like"]
	lo := append([]float64(nil), cols[0]...)
	hi := append([]float64(nil), cols[1]...)
	p := newSidecarPager(t)
	s, err := BuildIntervalSidecarWith(p, lo, hi, SidecarCodecPacked)
	if err != nil {
		t.Fatal(err)
	}
	ps := p.PageSize()
	patch := func(pos int, nl, nh float64) error {
		pid, idx, err := s.PageFor(pos)
		if err != nil {
			t.Fatal(err)
		}
		page := make([]byte, ps)
		if err := p.ReadPage(pid, page); err != nil {
			t.Fatal(err)
		}
		if err := s.PatchEntry(page, pid, idx, nl, nh); err != nil {
			return err
		}
		if err := p.WritePage(pid, page); err != nil {
			t.Fatal(err)
		}
		lo[pos], hi[pos] = nl, nh
		return nil
	}
	for _, pos := range []int{0, 1, 255, 256, 511, 899, 450} {
		if err := patch(pos, lo[pos]-3.5, hi[pos]+7.25); err != nil {
			t.Fatalf("patch %d: %v", pos, err)
		}
	}
	gotLo, gotHi := scanAll(t, s, p)
	if !sameBits(gotLo, lo) || !sameBits(gotHi, hi) {
		t.Fatal("patched scan not bit-identical to expected columns")
	}

	// Drive the first page to overflow with incompressible values. The
	// build slack absorbs a few; a page's worth of random 64-bit residuals
	// cannot fit and must fail cleanly.
	r := lcg(123)
	overflowed := false
	firstPageEntries := int(s.PageFirstPositions()[1])
	for pos := 0; pos < firstPageEntries; pos++ {
		nl := math.Float64frombits(r.next())
		nh := math.Float64frombits(r.next())
		pid, idx, err := s.PageFor(pos)
		if err != nil {
			t.Fatal(err)
		}
		page := make([]byte, ps)
		if err := p.ReadPage(pid, page); err != nil {
			t.Fatal(err)
		}
		before := append([]byte(nil), page...)
		err = s.PatchEntry(page, pid, idx, nl, nh)
		if errors.Is(err, ErrSidecarPageFull) {
			if !bytes.Equal(page, before) {
				t.Fatal("failed patch modified the page image")
			}
			overflowed = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := p.WritePage(pid, page); err != nil {
			t.Fatal(err)
		}
	}
	if !overflowed {
		t.Fatal("incompressible patches never hit ErrSidecarPageFull")
	}
}

// TestSidecarPackedOpenValidation rejects corrupt directories.
func TestSidecarPackedOpenValidation(t *testing.T) {
	cols := adversarialColumns(600)["monotone"]
	p := newSidecarPager(t)
	s, err := BuildIntervalSidecarWith(p, cols[0], cols[1], SidecarCodecPacked)
	if err != nil {
		t.Fatal(err)
	}
	fp := s.PageFirstPositions()
	bad := [][]uint32{
		nil,                            // count > 0 with empty directory
		append([]uint32{5}, fp[1:]...), // first page not at 0
		append(append([]uint32{}, fp...), uint32(s.Count())), // empty last page
	}
	for i, dir := range bad {
		if _, err := OpenIntervalSidecarPacked(p, s.FirstPage(), s.Count(), dir); err == nil {
			t.Fatalf("corrupt directory %d accepted", i)
		}
	}
	if !ValidSidecarCodec(SidecarCodecRaw) || !ValidSidecarCodec(SidecarCodecPacked) || ValidSidecarCodec("lz4") {
		t.Fatal("ValidSidecarCodec wrong")
	}
}
