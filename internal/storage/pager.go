package storage

import (
	"container/list"
	"fmt"
	"sync"
	"time"
)

// DiskModel describes the simulated cost of page accesses. The defaults model
// a circa-2001 commodity disk (the paper's testbed era): a random page access
// pays a full seek + rotational delay, while the next physically contiguous
// page streams at media rate.
type DiskModel struct {
	// RandomRead is charged for a page that is not the successor of the
	// previously accessed page.
	RandomRead time.Duration
	// SequentialRead is charged for accessing page n+1 right after page n.
	SequentialRead time.Duration
}

// DefaultDiskModel is the cost model used by the experiment harness. It is
// calibrated to the paper's measurement setting — a Unix system whose
// database file is partially resident in the OS cache, so a random page
// access costs a few times a sequential one rather than a full mechanical
// seek (the paper's absolute times, e.g. 12 ms to linear-scan 262k cells,
// are only possible with cache-backed I/O). Use Disk2001Model for a
// cold-disk sensitivity analysis.
var DefaultDiskModel = DiskModel{
	RandomRead:     1 * time.Millisecond,
	SequentialRead: 250 * time.Microsecond,
}

// Disk2001Model charges full mechanical seeks, approximating a cold
// commodity disk of the paper's era.
var Disk2001Model = DiskModel{
	RandomRead:     10 * time.Millisecond,
	SequentialRead: 500 * time.Microsecond,
}

// Stats accumulates the I/O activity of a Pager. Counters are cumulative;
// use Reset or Snapshot deltas to scope a measurement to one query.
type Stats struct {
	Reads      int           // total page reads that reached the disk
	SeqReads   int           // reads charged at sequential cost
	RandReads  int           // reads charged at random cost
	Writes     int           // page writes
	CacheHits  int           // reads served by the buffer pool
	SimElapsed time.Duration // simulated disk time for all charged accesses
}

// Sub returns s - o, the activity between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:      s.Reads - o.Reads,
		SeqReads:   s.SeqReads - o.SeqReads,
		RandReads:  s.RandReads - o.RandReads,
		Writes:     s.Writes - o.Writes,
		CacheHits:  s.CacheHits - o.CacheHits,
		SimElapsed: s.SimElapsed - o.SimElapsed,
	}
}

// Add returns s + o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Reads:      s.Reads + o.Reads,
		SeqReads:   s.SeqReads + o.SeqReads,
		RandReads:  s.RandReads + o.RandReads,
		Writes:     s.Writes + o.Writes,
		CacheHits:  s.CacheHits + o.CacheHits,
		SimElapsed: s.SimElapsed + o.SimElapsed,
	}
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d (seq=%d rand=%d) hits=%d writes=%d sim=%v",
		s.Reads, s.SeqReads, s.RandReads, s.CacheHits, s.Writes, s.SimElapsed)
}

// Pager mediates all page access, charging the simulated disk clock and
// optionally caching pages in an LRU buffer pool. A pool size of zero — the
// default used by the experiments — models the paper's cold-cache setting
// where every query's page accesses hit the disk.
type Pager struct {
	mu       sync.Mutex
	disk     Disk
	model    DiskModel
	stats    Stats
	lastPage PageID // last page actually read from disk, for seq detection

	poolSize int
	lru      *list.List               // front = most recently used; values are *frame
	frames   map[PageID]*list.Element // page id -> element in lru
}

type frame struct {
	id   PageID
	data []byte
}

// NewPager wraps disk with accounting under the given cost model.
// poolSize is the number of pages the buffer pool may hold; zero disables
// caching entirely.
func NewPager(disk Disk, model DiskModel, poolSize int) *Pager {
	if poolSize < 0 {
		poolSize = 0
	}
	return &Pager{
		disk:     disk,
		model:    model,
		lastPage: InvalidPage,
		poolSize: poolSize,
		lru:      list.New(),
		frames:   make(map[PageID]*list.Element),
	}
}

// PageSize returns the underlying disk's page size.
func (p *Pager) PageSize() int { return p.disk.PageSize() }

// NumPages returns the underlying disk's page count.
func (p *Pager) NumPages() int { return p.disk.NumPages() }

// ReadPage reads page id into buf, charging the simulated clock unless the
// page is resident in the buffer pool.
func (p *Pager) ReadPage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.frames[id]; ok {
		p.lru.MoveToFront(el)
		copy(buf, el.Value.(*frame).data)
		p.stats.CacheHits++
		return nil
	}
	if err := p.disk.ReadPage(id, buf); err != nil {
		return err
	}
	p.charge(id)
	p.cache(id, buf)
	return nil
}

// charge updates counters and the simulated clock for a disk read of page id.
// Callers must hold p.mu.
func (p *Pager) charge(id PageID) {
	p.stats.Reads++
	if p.lastPage != InvalidPage && id == p.lastPage+1 {
		p.stats.SeqReads++
		p.stats.SimElapsed += p.model.SequentialRead
	} else {
		p.stats.RandReads++
		p.stats.SimElapsed += p.model.RandomRead
	}
	p.lastPage = id
}

// cache inserts a copy of buf into the buffer pool. Callers must hold p.mu.
func (p *Pager) cache(id PageID, buf []byte) {
	if p.poolSize == 0 {
		return
	}
	if el, ok := p.frames[id]; ok {
		copy(el.Value.(*frame).data, buf)
		p.lru.MoveToFront(el)
		return
	}
	for p.lru.Len() >= p.poolSize {
		back := p.lru.Back()
		p.lru.Remove(back)
		delete(p.frames, back.Value.(*frame).id)
	}
	data := make([]byte, len(buf))
	copy(data, buf)
	p.frames[id] = p.lru.PushFront(&frame{id: id, data: data})
}

// WritePage writes buf to page id. Writes are counted but not charged to the
// simulated read clock: index construction happens before the measured query
// phase, exactly as in the paper.
func (p *Pager) WritePage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.disk.WritePage(id, buf); err != nil {
		return err
	}
	p.stats.Writes++
	if el, ok := p.frames[id]; ok {
		copy(el.Value.(*frame).data, buf)
	}
	return nil
}

// Alloc allocates a fresh page on the underlying disk.
func (p *Pager) Alloc() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.disk.Alloc()
}

// Stats returns a snapshot of the accumulated counters.
func (p *Pager) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the counters and the sequential-access tracker.
func (p *Pager) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
	p.lastPage = InvalidPage
}

// DropCache empties the buffer pool without touching the counters, modelling
// a cold start between queries.
func (p *Pager) DropCache() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lru.Init()
	p.frames = make(map[PageID]*list.Element)
	p.lastPage = InvalidPage
}

// Model returns the pager's disk cost model.
func (p *Pager) Model() DiskModel { return p.model }

// SnapshotTo copies every page of the underlying disk to dst, allocating
// pages there as needed. The copy bypasses the cost accounting — it is a
// maintenance operation (saving a built database to a file), not part of a
// measured query.
func (p *Pager) SnapshotTo(dst Disk) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if dst.PageSize() != p.disk.PageSize() {
		return fmt.Errorf("storage: snapshot page size mismatch: %d vs %d", dst.PageSize(), p.disk.PageSize())
	}
	buf := make([]byte, p.disk.PageSize())
	n := p.disk.NumPages()
	for id := 0; id < n; id++ {
		if err := p.disk.ReadPage(PageID(id), buf); err != nil {
			return err
		}
		did, err := dst.Alloc()
		if err != nil {
			return err
		}
		if did != PageID(id) {
			return fmt.Errorf("storage: snapshot destination not empty (page %d became %d)", id, did)
		}
		if err := dst.WritePage(did, buf); err != nil {
			return err
		}
	}
	return nil
}
