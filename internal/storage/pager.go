package storage

import (
	"container/list"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"fielddb/internal/obs"
)

// DiskModel describes the simulated cost of page accesses. The defaults model
// a circa-2001 commodity disk (the paper's testbed era): a random page access
// pays a full seek + rotational delay, while the next physically contiguous
// page streams at media rate.
type DiskModel struct {
	// RandomRead is charged for a page that is not the successor of the
	// previously accessed page.
	RandomRead time.Duration
	// SequentialRead is charged for accessing page n+1 right after page n.
	SequentialRead time.Duration
}

// DefaultDiskModel is the cost model used by the experiment harness. It is
// calibrated to the paper's measurement setting — a Unix system whose
// database file is partially resident in the OS cache, so a random page
// access costs a few times a sequential one rather than a full mechanical
// seek (the paper's absolute times, e.g. 12 ms to linear-scan 262k cells,
// are only possible with cache-backed I/O). Use Disk2001Model for a
// cold-disk sensitivity analysis.
var DefaultDiskModel = DiskModel{
	RandomRead:     1 * time.Millisecond,
	SequentialRead: 250 * time.Microsecond,
}

// Disk2001Model charges full mechanical seeks, approximating a cold
// commodity disk of the paper's era.
var Disk2001Model = DiskModel{
	RandomRead:     10 * time.Millisecond,
	SequentialRead: 500 * time.Microsecond,
}

// Stats accumulates the I/O activity of a Pager or QueryCtx. Counters are
// cumulative; use Sub on two snapshots, or a QueryCtx's own Stats, to scope a
// measurement to one query.
type Stats struct {
	Reads      int           // total page reads that reached the disk
	SeqReads   int           // reads charged at sequential cost
	RandReads  int           // reads charged at random cost
	Writes     int           // page writes
	CacheHits  int           // reads served by the buffer pool
	SimElapsed time.Duration // simulated disk time for all charged accesses
}

// Sub returns s - o, the activity between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:      s.Reads - o.Reads,
		SeqReads:   s.SeqReads - o.SeqReads,
		RandReads:  s.RandReads - o.RandReads,
		Writes:     s.Writes - o.Writes,
		CacheHits:  s.CacheHits - o.CacheHits,
		SimElapsed: s.SimElapsed - o.SimElapsed,
	}
}

// Add returns s + o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Reads:      s.Reads + o.Reads,
		SeqReads:   s.SeqReads + o.SeqReads,
		RandReads:  s.RandReads + o.RandReads,
		Writes:     s.Writes + o.Writes,
		CacheHits:  s.CacheHits + o.CacheHits,
		SimElapsed: s.SimElapsed + o.SimElapsed,
	}
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d (seq=%d rand=%d) hits=%d writes=%d sim=%v",
		s.Reads, s.SeqReads, s.RandReads, s.CacheHits, s.Writes, s.SimElapsed)
}

// PageCounts converts the read-side counters to the obs mirror type (obs sits
// below storage in the import order and cannot name Stats).
func (s Stats) PageCounts() obs.PageCounts {
	return obs.PageCounts{
		Reads:      s.Reads,
		SeqReads:   s.SeqReads,
		RandReads:  s.RandReads,
		CacheHits:  s.CacheHits,
		SimElapsed: s.SimElapsed,
	}
}

// PageReader is the read side of the paged store. Two implementations exist:
// *Pager, which charges its own pager-level accounting (build paths, legacy
// single-threaded use), and *QueryCtx, which charges a per-query execution
// context and is the unit of concurrency for the query pipeline. Both also
// implement the zero-copy PageViewer and vectorized RunReader capabilities.
type PageReader interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// ReadPage reads page id into buf, which must be PageSize() long.
	ReadPage(id PageID, buf []byte) error
}

// PageViewer is the zero-copy capability of a PageReader: ViewPage hands back
// a shared immutable frame instead of copying the page into a caller buffer.
// The caller must Release the frame when done; the charge to the reader's
// accounting is identical to ReadPage.
type PageViewer interface {
	ViewPage(id PageID) (*Frame, error)
}

// RunReader is the vectorized capability of a PageReader: ReadRun visits the
// contiguous page range [first, last] in order with batched pool interaction
// and at most one disk call per missing sub-run, while charging each page
// exactly as the equivalent ReadPage loop would (first page random,
// successors sequential; within-query revisits as cache hits). fn receives
// each page image, valid only during the call; returning false stops the run
// and leaves the remaining pages unread and uncharged.
type RunReader interface {
	ReadRun(first, last PageID, fn func(id PageID, page []byte) bool) error
}

// runChunkPages bounds how many frames a ReadRun pins at once, so an
// arbitrarily long run uses bounded memory.
const runChunkPages = 64

// Pager mediates all page access, charging the simulated disk clock and
// optionally caching pages in a shared sharded buffer pool. A pool size of
// zero — the cold-cache setting of the paper's experiments — disables caching
// so every page access hits the disk.
//
// The Pager is safe for concurrent use. Shared state is limited to the disk,
// the buffer pool, and the cumulative Stats totals; everything per-query
// (a query's own Stats and its sequential-read clock) lives in a QueryCtx
// obtained from BeginQuery, so concurrent queries cannot corrupt each other's
// accounting.
type Pager struct {
	disk     Disk
	rdisk    RunDisk // disk's optional vectorized read capability, or nil
	model    DiskModel
	poolSize int
	pool     *shardedPool // nil when poolSize == 0
	bufs     *bufPool     // page buffer freelist shared with the pool's frames

	mu       sync.Mutex // guards stats and lastPage
	stats    Stats
	lastPage PageID // pager-level seq detection, for reads outside a QueryCtx

	// epoch and ov form the MVCC plane (see epoch.go): the current epoch new
	// queries pin, and the copy-on-write overlay versions of updated pages.
	epoch atomic.Uint64
	ov    epochPlane
}

// NewPager wraps disk with accounting under the given cost model.
// poolSize is the number of pages the buffer pool may hold; zero disables
// caching entirely. The pool shard count is chosen automatically — see
// NewPagerShards to pin it.
func NewPager(disk Disk, model DiskModel, poolSize int) *Pager {
	return NewPagerShards(disk, model, poolSize, 0)
}

// NewPagerShards is NewPager with an explicit buffer-pool shard count,
// rounded down to a power of two and clamped so every shard holds at least
// one page. A shard count of zero picks the default: a single shard for
// pools under minShardedPoolSize pages — tiny pools keep the exact global
// LRU eviction order of the original single-mutex pool — and poolShards
// otherwise.
func NewPagerShards(disk Disk, model DiskModel, poolSize, shards int) *Pager {
	if poolSize < 0 {
		poolSize = 0
	}
	p := &Pager{
		disk:     disk,
		model:    model,
		poolSize: poolSize,
		bufs:     newBufPool(disk.PageSize()),
		lastPage: InvalidPage,
	}
	p.rdisk, _ = disk.(RunDisk)
	if poolSize > 0 {
		p.pool = newShardedPool(poolSize, shards, p.bufs)
	}
	return p
}

// PageSize returns the underlying disk's page size.
func (p *Pager) PageSize() int { return p.disk.PageSize() }

// NumPages returns the underlying disk's page count.
func (p *Pager) NumPages() int { return p.disk.NumPages() }

// PoolPages returns the buffer pool capacity the pager was created with.
func (p *Pager) PoolPages() int { return p.poolSize }

// PoolShards returns the number of independently locked buffer-pool shards
// (zero when the pool is disabled).
func (p *Pager) PoolShards() int {
	if p.pool == nil {
		return 0
	}
	return len(p.pool.shards)
}

// readThrough copies page id as seen at epoch into buf: the newest overlay
// version at or below epoch when one exists, else the shared pool or, on a
// miss, the disk (populating the pool). It moves data only — no accounting.
func (p *Pager) readThrough(id PageID, buf []byte, epoch uint64) (cached bool, err error) {
	if p.ov.active() {
		if f := p.ov.view(id, epoch); f != nil {
			copy(buf, f.Data())
			f.Release()
			return true, nil
		}
	}
	if p.pool != nil && p.pool.get(id, buf) {
		return true, nil
	}
	if err := p.disk.ReadPage(id, buf); err != nil {
		return false, err
	}
	if p.pool != nil {
		data := p.bufs.get()
		copy(data, buf)
		p.pool.insert(id, data).Release()
	}
	return false, nil
}

// viewThrough returns a retained frame for page id as seen at epoch: the
// newest overlay version at or below epoch when one exists, else the shared
// pool or, on a miss, the disk (populating the pool). Data movement only — no
// accounting.
func (p *Pager) viewThrough(id PageID, epoch uint64) (f *Frame, cached bool, err error) {
	if p.ov.active() {
		if f := p.ov.view(id, epoch); f != nil {
			return f, true, nil
		}
	}
	if p.pool != nil {
		if f := p.pool.view(id); f != nil {
			return f, true, nil
		}
	}
	data := p.bufs.get()
	if err := p.disk.ReadPage(id, data); err != nil {
		p.bufs.put(data)
		return nil, false, err
	}
	if p.pool != nil {
		return p.pool.insert(id, data), false, nil
	}
	return newFrame(id, data, p.bufs), false, nil
}

// viewRunThrough fills frames with retained frames for the pages
// first..first+len(frames)-1 as seen at epoch: overlaid pages resolve to
// their overlay version, the rest come from one batched pool probe, and each
// maximal still-missing sub-run is fetched with a single vectorized disk
// read. cached[i] reports overlay or pool residency at probe time. On error
// all frames are released and frames is left nil-filled.
func (p *Pager) viewRunThrough(first PageID, frames []*Frame, cached []bool, epoch uint64) error {
	n := len(frames)
	for i := 0; i < n; i++ {
		frames[i] = nil
		cached[i] = false
	}
	if p.ov.active() {
		for i := 0; i < n; i++ {
			frames[i] = p.ov.view(first+PageID(i), epoch)
		}
		if p.pool != nil {
			// Probe the pool only for the gaps between overlay hits, so a
			// stale base image never shadows an overlay version.
			for i := 0; i < n; {
				if frames[i] != nil {
					i++
					continue
				}
				j := i + 1
				for j < n && frames[j] == nil {
					j++
				}
				p.pool.viewRun(first+PageID(i), frames[i:j])
				i = j
			}
		}
	} else if p.pool != nil {
		p.pool.viewRun(first, frames)
	}
	for i := 0; i < n; {
		if frames[i] != nil {
			cached[i] = true
			i++
			continue
		}
		j := i + 1
		for j < n && frames[j] == nil {
			j++
		}
		if err := p.fetchRun(first+PageID(i), frames[i:j]); err != nil {
			for k := 0; k < n; k++ {
				if frames[k] != nil {
					frames[k].Release()
					frames[k] = nil
				}
			}
			return err
		}
		i = j
	}
	return nil
}

// fetchRun reads len(frames) consecutive pages starting at first from disk —
// one vectorized call when the disk supports RunDisk — and registers them
// with the pool.
func (p *Pager) fetchRun(first PageID, frames []*Frame) error {
	n := len(frames)
	bufs := make([][]byte, n)
	for i := range bufs {
		bufs[i] = p.bufs.get()
	}
	var err error
	if p.rdisk != nil && n > 1 {
		err = p.rdisk.ReadRun(first, bufs)
	} else {
		for i := range bufs {
			if err = p.disk.ReadPage(first+PageID(i), bufs[i]); err != nil {
				break
			}
		}
	}
	if err != nil {
		for _, b := range bufs {
			p.bufs.put(b)
		}
		return err
	}
	for i := range bufs {
		id := first + PageID(i)
		if p.pool != nil {
			frames[i] = p.pool.insert(id, bufs[i])
		} else {
			frames[i] = newFrame(id, bufs[i], p.bufs)
		}
	}
	return nil
}

// readRunChunks drives a ReadRun over [first, last] in chunks of at most
// runChunkPages: view-or-fetch a chunk, then walk it in page order charging
// each page through charge before handing its image to fn. An early stop by
// fn leaves the remaining pages uncharged — exactly like breaking out of a
// per-page ReadPage loop.
func (p *Pager) readRunChunks(first, last PageID, epoch uint64, charge func(id PageID, cached bool), fn func(id PageID, page []byte) bool) error {
	if first > last {
		return nil
	}
	var frames [runChunkPages]*Frame
	var cached [runChunkPages]bool
	for start := first; ; start += runChunkPages {
		n := int(last-start) + 1
		if n > runChunkPages {
			n = runChunkPages
		}
		if err := p.viewRunThrough(start, frames[:n], cached[:n], epoch); err != nil {
			return err
		}
		stop := false
		for i := 0; i < n; i++ {
			if !stop {
				id := start + PageID(i)
				charge(id, cached[i])
				if !fn(id, frames[i].Data()) {
					stop = true
				}
			}
			frames[i].Release()
			frames[i] = nil
		}
		if stop || start+PageID(n-1) == last {
			return nil
		}
	}
}

// addStats folds one query context's activity into the cumulative totals,
// so that Pager.Stats equals the sum of every reader's reported activity.
func (p *Pager) addStats(d Stats) {
	p.mu.Lock()
	p.stats = p.stats.Add(d)
	p.mu.Unlock()
}

// ReadPage reads page id into buf through the pager's own accounting: a pool
// hit counts as a cache hit, a miss is charged to the simulated clock using
// the pager-level sequential tracker. Query pipelines should prefer a
// QueryCtx from BeginQuery, which keeps this accounting per query.
func (p *Pager) ReadPage(id PageID, buf []byte) error {
	cached, err := p.readThrough(id, buf, p.epoch.Load())
	if err != nil {
		return err
	}
	p.chargeRead(id, cached)
	return nil
}

// ViewPage implements PageViewer with the same pager-level accounting as
// ReadPage; the caller must Release the returned frame.
func (p *Pager) ViewPage(id PageID) (*Frame, error) {
	f, cached, err := p.viewThrough(id, p.epoch.Load())
	if err != nil {
		return nil, err
	}
	p.chargeRead(id, cached)
	return f, nil
}

// ReadRun implements RunReader with pager-level accounting.
func (p *Pager) ReadRun(first, last PageID, fn func(id PageID, page []byte) bool) error {
	return p.readRunChunks(first, last, p.epoch.Load(), p.chargeRead, fn)
}

// chargeRead charges one page access to the pager-level accounting.
func (p *Pager) chargeRead(id PageID, cached bool) {
	p.mu.Lock()
	if cached {
		p.stats.CacheHits++
	} else {
		p.charge(id)
	}
	p.mu.Unlock()
}

// charge updates counters and the simulated clock for a disk read of page id.
// Callers must hold p.mu.
func (p *Pager) charge(id PageID) {
	p.stats.Reads++
	if p.lastPage != InvalidPage && id == p.lastPage+1 {
		p.stats.SeqReads++
		p.stats.SimElapsed += p.model.SequentialRead
	} else {
		p.stats.RandReads++
		p.stats.SimElapsed += p.model.RandomRead
	}
	p.lastPage = id
}

// WritePage writes buf to page id. Writes are counted but not charged to the
// simulated read clock: index construction happens before the measured query
// phase, exactly as in the paper.
func (p *Pager) WritePage(id PageID, buf []byte) error {
	if err := p.disk.WritePage(id, buf); err != nil {
		return err
	}
	p.mu.Lock()
	p.stats.Writes++
	p.mu.Unlock()
	if p.pool != nil {
		p.pool.update(id, buf)
	}
	return nil
}

// Alloc allocates a fresh page on the underlying disk.
func (p *Pager) Alloc() (PageID, error) {
	return p.disk.Alloc()
}

// Stats returns a snapshot of the accumulated counters: the sum of every
// reader's activity, pager-level reads and QueryCtx reads alike.
func (p *Pager) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the counters and the pager-level sequential tracker.
func (p *Pager) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
	p.lastPage = InvalidPage
}

// DropCache empties the shared buffer pool without touching the counters,
// modelling a cold start between queries.
func (p *Pager) DropCache() {
	if p.pool != nil {
		p.pool.drop()
	}
	p.mu.Lock()
	p.lastPage = InvalidPage
	p.mu.Unlock()
}

// Model returns the pager's disk cost model.
func (p *Pager) Model() DiskModel { return p.model }

// PoolShardStats returns a snapshot of each buffer-pool shard's occupancy and
// probe counters, or nil when the pool is disabled. Shard i caches page ids
// with id & (shards-1) == i.
func (p *Pager) PoolShardStats() []PoolShardStats {
	if p.pool == nil {
		return nil
	}
	return p.pool.shardStats()
}

// Close releases the underlying disk when it holds external resources
// (FileDisk); in-memory disks make it a no-op.
func (p *Pager) Close() error {
	if c, ok := p.disk.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// SnapshotTo copies every page of the store as seen at the current epoch to
// dst, allocating pages there as needed: overlaid pages are materialized from
// their newest overlay version, so the saved file is the live state, not the
// stale base. The copy bypasses the cost accounting — it is a maintenance
// operation (saving a built database to a file), not part of a measured
// query.
func (p *Pager) SnapshotTo(dst Disk) error {
	if dst.PageSize() != p.disk.PageSize() {
		return fmt.Errorf("storage: snapshot page size mismatch: %d vs %d", dst.PageSize(), p.disk.PageSize())
	}
	epoch := p.epoch.Load()
	buf := make([]byte, p.disk.PageSize())
	n := p.disk.NumPages()
	for id := 0; id < n; id++ {
		if f := p.ov.view(PageID(id), epoch); f != nil {
			copy(buf, f.Data())
			f.Release()
		} else if err := p.disk.ReadPage(PageID(id), buf); err != nil {
			return err
		}
		did, err := dst.Alloc()
		if err != nil {
			return err
		}
		if did != PageID(id) {
			return fmt.Errorf("storage: snapshot destination not empty (page %d became %d)", id, did)
		}
		if err := dst.WritePage(did, buf); err != nil {
			return err
		}
	}
	return nil
}

// QueryCtx is the per-query execution context: one query's own Stats, its own
// sequential-read clock, and a cold private view of the buffer pool, reading
// page data through the shared pool. Every query accounts exactly as if it
// ran alone against a freshly dropped cache — the paper's measurement model —
// no matter how many queries run concurrently.
//
// A QueryCtx is owned by one goroutine. The parallel refinement step gives
// each worker its own child context via Fork and folds the children back with
// Merge; a cell run starts with a random access and streams sequentially, so
// per-run accounting is identical however runs are assigned to workers.
type QueryCtx struct {
	pager    *Pager
	stats    Stats
	lastPage PageID // last page this query read from disk, for seq detection

	// epoch is the MVCC snapshot this query reads: every page resolves to
	// the newest overlay version at or below it. pinned records whether this
	// context holds the pin keeping that epoch's versions alive (forked
	// worker contexts ride their parent's pin).
	epoch  uint64
	pinned bool

	// seen/lru form the accounting-only private pool: the pages this query
	// would find cached had it run alone against a cold pool of the pager's
	// capacity. Nil when the pool is disabled (poolSize 0).
	seen map[PageID]*list.Element
	lru  *list.List // of PageID

	// flushed is the prefix of stats already folded into the pager totals.
	// Accounting is accumulated lock-free in this context and published to
	// the shared totals only by Stats (and absorbed by Merge), so the hot
	// read path takes no per-page accounting lock.
	flushed Stats

	// tb is the query's trace builder, or nil when tracing is off. Spans are
	// charged by snapshotting stats at phase boundaries (BeginSpan/EndSpan),
	// never per page, so the read path above is identical either way.
	tb *obs.TraceBuilder
}

// BeginQuery returns a fresh execution context for one query, pinned to the
// pager's current epoch so a concurrently committed update batch cannot
// change what this query reads.
func (p *Pager) BeginQuery() *QueryCtx {
	for {
		e := p.epoch.Load()
		if p.ov.pin(e) {
			return p.newQueryCtx(e, true)
		}
		// The epoch moved below the compaction low-water mark between the
		// load and the pin — an update batch committed in the window. Re-read
		// and retry; the loop terminates because commits are finite.
	}
}

// BeginQueryAt returns an execution context pinned to an explicit epoch — the
// snapshot-read entry point. It fails when the epoch has been compacted away
// (no pin held it when a later update batch committed).
func (p *Pager) BeginQueryAt(epoch uint64) (*QueryCtx, bool) {
	if !p.ov.pin(epoch) {
		return nil, false
	}
	return p.newQueryCtx(epoch, true), true
}

func (p *Pager) newQueryCtx(epoch uint64, pinned bool) *QueryCtx {
	qc := &QueryCtx{pager: p, lastPage: InvalidPage, epoch: epoch, pinned: pinned}
	if p.poolSize > 0 {
		qc.seen = make(map[PageID]*list.Element)
		qc.lru = list.New()
	}
	return qc
}

// PageSize implements PageReader.
func (qc *QueryCtx) PageSize() int { return qc.pager.PageSize() }

// Model returns the underlying pager's disk cost model.
func (qc *QueryCtx) Model() DiskModel { return qc.pager.model }

// ReadPage implements PageReader: page data comes from the shared pool or
// disk, while the charge — cache hit on a within-query revisit, sequential or
// random disk read otherwise — goes to this query's private accounting,
// published to the pager's cumulative totals when Stats is called.
func (qc *QueryCtx) ReadPage(id PageID, buf []byte) error {
	if _, err := qc.pager.readThrough(id, buf, qc.epoch); err != nil {
		return err
	}
	qc.chargeRead(id)
	return nil
}

// ViewPage implements PageViewer: a zero-copy shared frame, with the access
// charged to this query's private accounting exactly like ReadPage. The
// caller must Release the frame.
func (qc *QueryCtx) ViewPage(id PageID) (*Frame, error) {
	f, _, err := qc.pager.viewThrough(id, qc.epoch)
	if err != nil {
		return nil, err
	}
	qc.chargeRead(id)
	return f, nil
}

// ReadRun implements RunReader. Whatever the batching does at the pool and
// disk layers, each page is charged through chargeRead in page order, so the
// per-query accounting is byte-identical to the equivalent ReadPage loop.
func (qc *QueryCtx) ReadRun(first, last PageID, fn func(id PageID, page []byte) bool) error {
	return qc.pager.readRunChunks(first, last, qc.epoch, func(id PageID, _ bool) {
		qc.chargeRead(id)
	}, fn)
}

// chargeRead charges one page access to this query's private accounting:
// cache hit on a within-query revisit, sequential or random disk read
// otherwise. The charge depends only on this context's own history (seen set
// and sequential clock), never on shared pool residency — that is what keeps
// per-query accounting independent of how many queries run concurrently and
// of how the bytes were obtained (copy, view, or run batch).
func (qc *QueryCtx) chargeRead(id PageID) {
	if qc.seen != nil {
		if el, ok := qc.seen[id]; ok {
			qc.lru.MoveToFront(el)
			qc.stats.CacheHits++
			return
		}
	}
	qc.stats.Reads++
	if qc.lastPage != InvalidPage && id == qc.lastPage+1 {
		qc.stats.SeqReads++
		qc.stats.SimElapsed += qc.pager.model.SequentialRead
	} else {
		qc.stats.RandReads++
		qc.stats.SimElapsed += qc.pager.model.RandomRead
	}
	qc.lastPage = id
	qc.note(id)
}

// note records id in the private pool view, evicting in LRU order at the
// pager's pool capacity.
func (qc *QueryCtx) note(id PageID) {
	if qc.seen == nil {
		return
	}
	for qc.lru.Len() >= qc.pager.poolSize {
		back := qc.lru.Back()
		qc.lru.Remove(back)
		delete(qc.seen, back.Value.(PageID))
	}
	qc.seen[id] = qc.lru.PushFront(id)
}

// ChargePage charges one page access to this query's private accounting
// without moving any data. It is the attribution half of a shared (batched)
// fetch: the bytes come from one physical run read serving a whole batch,
// while every member query charges exactly the page sequence its solo
// execution would have read — same ids, same order — so the per-query
// statistics stay byte-identical to a solo run no matter how the batch
// coalesced the I/O.
func (qc *QueryCtx) ChargePage(id PageID) { qc.chargeRead(id) }

// ChargeRun charges the pages [first, last] in ascending order, exactly as a
// ReadRun over the same range would, without moving any data. See ChargePage.
func (qc *QueryCtx) ChargeRun(first, last PageID) {
	for id := first; id <= last; id++ {
		qc.chargeRead(id)
	}
}

// Stats returns this query's accumulated activity, including any merged
// worker contexts, and publishes the not-yet-published part to the pager's
// cumulative totals. Every query path ends by reporting its I/O through
// Stats, so at quiescence Pager.Stats equals the sum of all reported
// per-query Stats. (A context abandoned mid-query — an error return before
// Stats — keeps its partial activity out of the totals, which is exactly
// what keeps that sum exact.)
func (qc *QueryCtx) Stats() Stats {
	if d := qc.stats.Sub(qc.flushed); d != (Stats{}) {
		qc.pager.addStats(d)
		qc.flushed = qc.stats
	}
	qc.Release()
	return qc.stats
}

// Epoch returns the MVCC snapshot this context reads.
func (qc *QueryCtx) Epoch() uint64 { return qc.epoch }

// Release drops this context's epoch pin without publishing its stats — for
// contexts whose activity is folded elsewhere (a batch's physical context) or
// abandoned on an error path. Stats releases implicitly; calling both, or
// Release twice, is harmless.
func (qc *QueryCtx) Release() {
	if qc.pinned {
		qc.pager.ov.unpin(qc.epoch)
		qc.pinned = false
	}
}

// LocalStats returns this query's accumulated activity without publishing it
// to the pager's cumulative totals — a boundary snapshot for phase
// attribution, where the final Stats call still publishes every increment
// exactly once.
func (qc *QueryCtx) LocalStats() Stats { return qc.stats }

// AttachTrace ties a trace builder (possibly nil) to this context so the
// query pipeline can mark phase boundaries with BeginSpan/EndSpan.
func (qc *QueryCtx) AttachTrace(tb *obs.TraceBuilder) { qc.tb = tb }

// BeginSpan opens a trace span for phase ph at the current private-stats
// boundary. A no-op without an attached trace.
func (qc *QueryCtx) BeginSpan(ph obs.Phase) {
	if qc.tb != nil {
		qc.tb.BeginSpan(ph, qc.stats.PageCounts())
	}
}

// EndSpan closes the open trace span, charging it the page activity since its
// BeginSpan. A no-op without an attached trace.
func (qc *QueryCtx) EndSpan() {
	if qc.tb != nil {
		qc.tb.EndSpan(qc.stats.PageCounts())
	}
}

// Fork returns a child context for one worker of a parallel refinement step:
// fresh stats and a fresh sequential-read clock over the same pager, reading
// at the parent's epoch. The child holds no pin of its own — the parent's
// pin outlives it, since every worker is merged back before the parent
// publishes.
func (qc *QueryCtx) Fork() *QueryCtx { return qc.pager.newQueryCtx(qc.epoch, false) }

// Merge folds a finished child context's activity into this query's stats.
// Whatever the child already published to the pager totals is remembered as
// published here too, so the parent's final Stats publishes each increment
// exactly once.
func (qc *QueryCtx) Merge(child *QueryCtx) {
	qc.stats = qc.stats.Add(child.stats)
	qc.flushed = qc.flushed.Add(child.flushed)
}

var (
	_ PageReader = (*Pager)(nil)
	_ PageReader = (*QueryCtx)(nil)
	_ PageViewer = (*Pager)(nil)
	_ PageViewer = (*QueryCtx)(nil)
	_ RunReader  = (*Pager)(nil)
	_ RunReader  = (*QueryCtx)(nil)
)
