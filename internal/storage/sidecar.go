package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Interval sidecar: a packed columnar segment holding one (lo, hi) float64
// pair per heap-file record, in heap-file order. The filter step of a value
// query needs only these two numbers per cell, and a sidecar page holds
// hundreds of them versus a handful of full cell records per heap page — so
// scanning the sidecar instead of cell pages cuts the filter's page I/O by
// more than an order of magnitude (the Lawson et al. precomputed-metadata
// trick, applied to the paper's §2.2.2 filter step).
//
// Two page codecs exist behind the sidecarPageCodec interface:
//
//   - raw (FSC1), the legacy/fallback layout: fixed-width float64 columns,
//     a fixed 255 entries per 4 KiB page, purely arithmetic addressing.
//   - packed (FSC2): each column is delta-encoded on the float64 bit
//     patterns (or double-delta, chosen per page per column — monotone ramps
//     have near-constant deltas and compress to almost nothing under the
//     second difference) and the zigzag residuals are bit-packed into two
//     per-page width classes plus an escape. Pages hold a variable number of
//     entries, addressed through a first-position directory persisted in the
//     catalog. Decoding reproduces the exact input bit patterns — the filter
//     stays bit-identical to testing CellIntervalFromRecord per record.
//
// Raw page layout (little endian):
//
//	[0:4)   magic "FSC1"
//	[4:8)   count u32 — intervals stored in this page
//	[8:16)  first u64 — global position of the page's first interval
//	[16:16+8·perPage)          lo column, count used
//	[16+8·perPage:16+16·perPage) hi column, count used
//
// Packed page layout (little endian):
//
//	[0:4)   magic "FSC2"
//	[4:8)   count u32
//	[8:16)  first u64
//	[16:18) loLen u16 — byte length of the lo column block
//	[18:...) lo column block, hi column block
//
// Column block: predictor byte (0 delta, 1 double-delta), w1 byte, w2 byte,
// first value raw u64, then 2-bit tags for entries 1..count-1 (00 zero
// residual, 01 w1-bit, 10 w2-bit, 11 raw 64-bit), then the bit-packed
// zigzag residuals, LSB-first.
//
// In both codecs the hi column decodes with fixed strides relative to the
// page header, and pages are allocated back-to-back, so a sidecar scan is
// one sequential run charged at sequential cost after its first page.
const (
	sidecarHeaderSize = 16
	sidecarEntrySize  = 16

	packedHeaderSize = 18
	packedColHeader  = 11 // predictor + w1 + w2 + first value

	// packedSlack is the build-time reserve per packed page: updates
	// re-encode a page in place, and a shifted value can need wider
	// residuals than the original column, so pages are built short of full
	// to absorb the growth. A patch that still does not fit fails with
	// ErrSidecarPageFull.
	packedSlack = 256

	// packedMaxFactor caps packed entries per page at this multiple of the
	// raw capacity, bounding decode scratch.
	packedMaxFactor = 4
)

// Sidecar codec names, as persisted in catalogs and accepted by the facade.
const (
	SidecarCodecRaw    = "raw"
	SidecarCodecPacked = "packed"
)

// ErrSidecarPageFull is returned by PatchEntry when a packed page cannot
// re-encode the patched column within the page size — the update batch fails
// cleanly and no state changes.
var ErrSidecarPageFull = errors.New("storage: packed sidecar page full")

var (
	sidecarMagic       = [4]byte{'F', 'S', 'C', '1'}
	sidecarPackedMagic = [4]byte{'F', 'S', 'C', '2'}
)

// ValidSidecarCodec reports whether name names a known sidecar codec.
func ValidSidecarCodec(name string) bool {
	return name == SidecarCodecRaw || name == SidecarCodecPacked
}

// IntervalSidecar addresses a built (or reopened) sidecar segment.
type IntervalSidecar struct {
	first   PageID
	pages   int
	count   int
	perPage int // raw capacity of one page; scratch bound for packed

	codec sidecarPageCodec
	// firstPos is the per-page first-position directory of a packed
	// segment (firstPos[i] is the global position of page i's first entry,
	// firstPos[0] == 0); nil for raw segments, whose addressing is
	// arithmetic.
	firstPos []uint32
}

// SidecarEntriesPerPage returns how many intervals fit in one raw sidecar
// page.
func SidecarEntriesPerPage(pageSize int) int {
	return (pageSize - sidecarHeaderSize) / sidecarEntrySize
}

// SidecarMaxEntriesPerPage returns the per-page entry cap of the packed
// codec.
func SidecarMaxEntriesPerPage(pageSize int) int {
	return packedMaxFactor * SidecarEntriesPerPage(pageSize)
}

// BuildIntervalSidecar writes raw (FSC1) interval columns to freshly
// allocated, physically contiguous pages on pager. lo and hi must be the
// per-record bounds in heap-file order. The writes go through the pager's
// write path, so — like heap-file construction — they are counted but not
// charged to the simulated read clock.
func BuildIntervalSidecar(pager *Pager, lo, hi []float64) (*IntervalSidecar, error) {
	return BuildIntervalSidecarWith(pager, lo, hi, SidecarCodecRaw)
}

// BuildIntervalSidecarWith is BuildIntervalSidecar with an explicit codec.
func BuildIntervalSidecarWith(pager *Pager, lo, hi []float64, codec string) (*IntervalSidecar, error) {
	if len(lo) != len(hi) {
		return nil, fmt.Errorf("storage: sidecar columns differ: %d vs %d", len(lo), len(hi))
	}
	ps := pager.PageSize()
	perPage := SidecarEntriesPerPage(ps)
	if perPage < 1 {
		return nil, fmt.Errorf("storage: page size %d too small for sidecar", ps)
	}
	s := &IntervalSidecar{perPage: perPage, count: len(lo)}
	var limit int
	switch codec {
	case SidecarCodecRaw:
		s.codec = rawCodec{perPage: perPage}
		limit = ps
	case SidecarCodecPacked:
		s.codec = packedCodec{maxEntries: SidecarMaxEntriesPerPage(ps)}
		limit = ps - packedSlack
		s.firstPos = []uint32{}
	default:
		return nil, fmt.Errorf("storage: unknown sidecar codec %q", codec)
	}
	buf := make([]byte, ps)
	for base := 0; base < len(lo); {
		n := s.codec.fit(lo, hi, base, limit)
		if n < 1 {
			return nil, fmt.Errorf("storage: sidecar entry %d does not fit a page", base)
		}
		for i := range buf {
			buf[i] = 0
		}
		s.codec.encodePage(buf, base, lo[base:base+n], hi[base:base+n])
		id, err := pager.Alloc()
		if err != nil {
			return nil, err
		}
		if s.pages == 0 {
			s.first = id
		} else if id != s.first+PageID(s.pages) {
			return nil, fmt.Errorf("storage: sidecar page %d not contiguous after %d", id, s.first)
		}
		if err := pager.WritePage(id, buf); err != nil {
			return nil, err
		}
		if s.firstPos != nil {
			s.firstPos = append(s.firstPos, uint32(base))
		}
		s.pages++
		base += n
	}
	return s, nil
}

// OpenIntervalSidecar reopens a raw sidecar segment from its catalog
// geometry.
func OpenIntervalSidecar(pager *Pager, first PageID, pages, count int) (*IntervalSidecar, error) {
	perPage := SidecarEntriesPerPage(pager.PageSize())
	if perPage < 1 || pages < 0 || count < 0 ||
		count > pages*perPage || (pages > 0 && count <= (pages-1)*perPage) {
		return nil, fmt.Errorf("storage: sidecar geometry %d pages / %d entries invalid", pages, count)
	}
	return &IntervalSidecar{
		first: first, pages: pages, count: count, perPage: perPage,
		codec: rawCodec{perPage: perPage},
	}, nil
}

// OpenIntervalSidecarPacked reopens a packed sidecar segment from its
// catalog geometry and first-position directory.
func OpenIntervalSidecarPacked(pager *Pager, first PageID, count int, firstPos []uint32) (*IntervalSidecar, error) {
	ps := pager.PageSize()
	perPage := SidecarEntriesPerPage(ps)
	maxPer := SidecarMaxEntriesPerPage(ps)
	if perPage < 1 || count < 0 || (count > 0) != (len(firstPos) > 0) {
		return nil, fmt.Errorf("storage: packed sidecar geometry %d pages / %d entries invalid", len(firstPos), count)
	}
	for i, fp := range firstPos {
		next := count
		if i+1 < len(firstPos) {
			next = int(firstPos[i+1])
		}
		per := next - int(fp)
		if (i == 0 && fp != 0) || per < 1 || per > maxPer {
			return nil, fmt.Errorf("storage: packed sidecar directory corrupt at page %d", i)
		}
	}
	own := make([]uint32, len(firstPos))
	copy(own, firstPos)
	return &IntervalSidecar{
		first: first, pages: len(firstPos), count: count, perPage: perPage,
		codec: packedCodec{maxEntries: maxPer}, firstPos: own,
	}, nil
}

// FirstPage returns the segment's first page id.
func (s *IntervalSidecar) FirstPage() PageID { return s.first }

// NumPages returns the number of pages the segment occupies.
func (s *IntervalSidecar) NumPages() int { return s.pages }

// Count returns the number of intervals stored.
func (s *IntervalSidecar) Count() int { return s.count }

// Codec returns the segment's codec name.
func (s *IntervalSidecar) Codec() string { return s.codec.name() }

// PageFirstPositions returns the packed segment's first-position directory
// (nil for raw segments). The slice must not be modified; catalogs persist
// it so reopened segments address pages without reading them.
func (s *IntervalSidecar) PageFirstPositions() []uint32 { return s.firstPos }

// pageIndexOf returns the index of the page holding global position pos.
func (s *IntervalSidecar) pageIndexOf(pos int) int {
	if s.firstPos == nil {
		return pos / s.perPage
	}
	// First page whose successor starts beyond pos.
	return sort.Search(len(s.firstPos), func(i int) bool {
		next := s.count
		if i+1 < len(s.firstPos) {
			next = int(s.firstPos[i+1])
		}
		return next > pos
	})
}

// pageBaseOf returns the global position of page pi's first entry.
func (s *IntervalSidecar) pageBaseOf(pi int) int {
	if s.firstPos == nil {
		return pi * s.perPage
	}
	return int(s.firstPos[pi])
}

// ScanRange decodes the intervals of positions [start, end) through r,
// calling fn once per touched page with the global position of the first
// decoded entry and the packed lo/hi columns of the in-range entries (valid
// only during the call). Returning false stops the scan. Page reads are
// charged to r like any other query I/O; when r supports run reads (Pager
// and QueryCtx both do) the whole range is fetched through ReadRun, with
// per-page charges identical to a page-at-a-time loop.
func (s *IntervalSidecar) ScanRange(r PageReader, start, end int, fn func(base int, lo, hi []float64) bool) error {
	if start < 0 {
		start = 0
	}
	if end > s.count {
		end = s.count
	}
	if start >= end {
		return nil
	}
	firstPage := s.pageIndexOf(start)
	lastPage := s.pageIndexOf(end - 1)
	scratch := s.perPage
	if s.firstPos != nil {
		scratch = s.codec.(packedCodec).maxEntries
	}
	loCol := make([]float64, scratch)
	hiCol := make([]float64, scratch)
	decode := func(pi int, page []byte) (bool, error) {
		lo, hi, base, err := s.decodePage(pi, page, start, end, loCol, hiCol)
		if err != nil {
			return false, err
		}
		return fn(base, lo, hi), nil
	}
	if rr, ok := r.(RunReader); ok {
		var pageErr error
		pi := firstPage
		err := rr.ReadRun(s.first+PageID(firstPage), s.first+PageID(lastPage), func(_ PageID, page []byte) bool {
			more, err := decode(pi, page)
			pi++
			if err != nil {
				pageErr = err
				return false
			}
			return more
		})
		if err != nil {
			return err
		}
		return pageErr
	}
	buf := make([]byte, r.PageSize())
	for pi := firstPage; pi <= lastPage; pi++ {
		if err := r.ReadPage(s.first+PageID(pi), buf); err != nil {
			return err
		}
		more, err := decode(pi, buf)
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
	return nil
}

// PageFor returns the page id and the within-page entry index of global
// position pos — where a value update must patch the interval columns.
func (s *IntervalSidecar) PageFor(pos int) (PageID, int, error) {
	if pos < 0 || pos >= s.count {
		return InvalidPage, 0, fmt.Errorf("storage: sidecar position %d of %d", pos, s.count)
	}
	pi := s.pageIndexOf(pos)
	return s.first + PageID(pi), pos - s.pageBaseOf(pi), nil
}

// PatchEntry overwrites entry idx of a sidecar page image with (lo, hi),
// validating the page header first so a torn or mismatched image fails the
// update instead of silently corrupting the columns. The image is modified
// in place; callers stage it as a copy-on-write overlay. On a packed page
// the columns are decoded, patched, and re-encoded in place; if the patched
// column no longer fits the page, PatchEntry returns ErrSidecarPageFull and
// leaves the image unchanged.
func (s *IntervalSidecar) PatchEntry(page []byte, pi PageID, idx int, lo, hi float64) error {
	pageIdx := int(pi - s.first)
	if pageIdx < 0 || pageIdx >= s.pages {
		return fmt.Errorf("storage: sidecar page %d outside segment", pi)
	}
	return s.codec.patchEntry(page, s.pageBaseOf(pageIdx), idx, lo, hi)
}

// decodePage validates one sidecar page and decodes its entries overlapping
// [start, end) into the column scratch, returning the trimmed columns and
// the global position of their first entry.
func (s *IntervalSidecar) decodePage(pi int, page []byte, start, end int, loCol, hiCol []float64) ([]float64, []float64, int, error) {
	n, pageBase, err := s.codec.decodePage(page, loCol, hiCol)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("storage: sidecar page %d: %w", pi, err)
	}
	if pageBase != s.pageBaseOf(pi) {
		return nil, nil, 0, fmt.Errorf("storage: sidecar page %d: corrupt header", pi)
	}
	from, to := 0, n
	if start > pageBase {
		from = start - pageBase
	}
	if end < pageBase+n {
		to = end - pageBase
	}
	if from >= to {
		return nil, nil, 0, fmt.Errorf("storage: sidecar page %d: empty overlap", pi)
	}
	return loCol[from:to], hiCol[from:to], pageBase + from, nil
}

// sidecarPageCodec is the per-page encoding strategy behind an
// IntervalSidecar. Implementations are stateless: geometry — which page
// holds which positions — lives in IntervalSidecar, arithmetic for the
// fixed-capacity raw codec and a first-position directory for the packed
// one.
type sidecarPageCodec interface {
	// name is the codec identifier persisted in catalogs.
	name() string
	// fit returns the largest entry count n ≥ 1 such that entries
	// [base, base+n) of the columns encode into at most limit bytes, or 0
	// when even one entry does not fit.
	fit(lo, hi []float64, base, limit int) int
	// encodePage writes the given column slices into buf, a zeroed page,
	// with base as the page's first global position.
	encodePage(buf []byte, base int, lo, hi []float64)
	// decodePage decodes a page image into the column scratch, returning
	// the entry count and the page's first global position.
	decodePage(page []byte, loCol, hiCol []float64) (n, base int, err error)
	// patchEntry overwrites entry idx of a page image whose first global
	// position is pageBase.
	patchEntry(page []byte, pageBase, idx int, lo, hi float64) error
}

// rawCodec is the legacy FSC1 layout: fixed-width float64 columns.
type rawCodec struct{ perPage int }

func (rawCodec) name() string { return SidecarCodecRaw }

func (c rawCodec) fit(lo, _ []float64, base, _ int) int {
	n := len(lo) - base
	if n > c.perPage {
		n = c.perPage
	}
	return n
}

func (c rawCodec) encodePage(buf []byte, base int, lo, hi []float64) {
	copy(buf[0:4], sidecarMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(lo)))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(base))
	loOff := sidecarHeaderSize
	hiOff := sidecarHeaderSize + 8*c.perPage
	for i := range lo {
		binary.LittleEndian.PutUint64(buf[loOff+8*i:], math.Float64bits(lo[i]))
		binary.LittleEndian.PutUint64(buf[hiOff+8*i:], math.Float64bits(hi[i]))
	}
}

func (c rawCodec) decodePage(page []byte, loCol, hiCol []float64) (int, int, error) {
	if [4]byte(page[0:4]) != sidecarMagic {
		return 0, 0, errors.New("bad magic")
	}
	n := int(binary.LittleEndian.Uint32(page[4:8]))
	base := int(binary.LittleEndian.Uint64(page[8:16]))
	if n > c.perPage || n > len(loCol) {
		return 0, 0, errors.New("corrupt header")
	}
	loOff := sidecarHeaderSize
	hiOff := sidecarHeaderSize + 8*c.perPage
	for i := 0; i < n; i++ {
		loCol[i] = math.Float64frombits(binary.LittleEndian.Uint64(page[loOff+8*i:]))
		hiCol[i] = math.Float64frombits(binary.LittleEndian.Uint64(page[hiOff+8*i:]))
	}
	return n, base, nil
}

func (c rawCodec) patchEntry(page []byte, pageBase, idx int, lo, hi float64) error {
	if [4]byte(page[0:4]) != sidecarMagic {
		return errors.New("storage: sidecar page: bad magic")
	}
	n := int(binary.LittleEndian.Uint32(page[4:8]))
	if int(binary.LittleEndian.Uint64(page[8:16])) != pageBase || idx < 0 || idx >= n {
		return fmt.Errorf("storage: sidecar entry %d of %d invalid", idx, n)
	}
	binary.LittleEndian.PutUint64(page[sidecarHeaderSize+8*idx:], math.Float64bits(lo))
	binary.LittleEndian.PutUint64(page[sidecarHeaderSize+8*c.perPage+8*idx:], math.Float64bits(hi))
	return nil
}

// packedCodec is the FSC2 layout: per-column delta or double-delta
// prediction on the float64 bit patterns, zigzag residuals bit-packed into
// two per-page width classes plus a 64-bit escape.
type packedCodec struct{ maxEntries int }

func (packedCodec) name() string { return SidecarCodecPacked }

func (c packedCodec) fit(lo, hi []float64, base, limit int) int {
	max := len(lo) - base
	if max > c.maxEntries {
		max = c.maxEntries
	}
	if max < 1 || c.size(lo, hi, base, 1) > limit {
		return 0
	}
	// Largest n whose encoded size stays within limit; size is monotone in
	// n for a fixed base (more entries never shrink a column block).
	return sort.Search(max, func(k int) bool {
		return c.size(lo, hi, base, k+1) > limit
	})
}

// size returns the encoded byte size of entries [base, base+n).
func (c packedCodec) size(lo, hi []float64, base, n int) int {
	return packedHeaderSize +
		planColumn(lo[base:base+n]).size +
		planColumn(hi[base:base+n]).size
}

func (c packedCodec) encodePage(buf []byte, base int, lo, hi []float64) {
	copy(buf[0:4], sidecarPackedMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(lo)))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(base))
	loLen := encodeColumn(buf[packedHeaderSize:], lo)
	binary.LittleEndian.PutUint16(buf[16:18], uint16(loLen))
	encodeColumn(buf[packedHeaderSize+loLen:], hi)
}

func (c packedCodec) decodePage(page []byte, loCol, hiCol []float64) (int, int, error) {
	if [4]byte(page[0:4]) != sidecarPackedMagic {
		return 0, 0, errors.New("bad magic")
	}
	n := int(binary.LittleEndian.Uint32(page[4:8]))
	base := int(binary.LittleEndian.Uint64(page[8:16]))
	loLen := int(binary.LittleEndian.Uint16(page[16:18]))
	if n < 1 || n > c.maxEntries || n > len(loCol) || packedHeaderSize+loLen > len(page) {
		return 0, 0, errors.New("corrupt header")
	}
	if err := decodeColumn(page[packedHeaderSize:packedHeaderSize+loLen], n, loCol); err != nil {
		return 0, 0, err
	}
	if err := decodeColumn(page[packedHeaderSize+loLen:], n, hiCol); err != nil {
		return 0, 0, err
	}
	return n, base, nil
}

func (c packedCodec) patchEntry(page []byte, pageBase, idx int, lo, hi float64) error {
	loCol := make([]float64, c.maxEntries)
	hiCol := make([]float64, c.maxEntries)
	n, base, err := c.decodePage(page, loCol, hiCol)
	if err != nil {
		return fmt.Errorf("storage: packed sidecar page: %v", err)
	}
	if base != pageBase || idx < 0 || idx >= n {
		return fmt.Errorf("storage: packed sidecar entry %d of %d invalid", idx, n)
	}
	loCol[idx], hiCol[idx] = lo, hi
	need := c.size(loCol, hiCol, 0, n) // columns now hold exactly the page
	if need > len(page) {
		return fmt.Errorf("%w: %d entries need %d bytes after patch", ErrSidecarPageFull, n, need)
	}
	for i := range page {
		page[i] = 0
	}
	c.encodePage(page, base, loCol[:n], hiCol[:n])
	return nil
}

// Column encoding machinery.

const (
	predictorDelta       = 0
	predictorDoubleDelta = 1
)

// colPlan is the chosen encoding of one column block: the predictor, the two
// width classes, and the resulting sizes.
type colPlan struct {
	predictor byte
	w1, w2    byte
	size      int // total column block bytes
}

// planColumn picks the cheaper of the delta and double-delta predictors for
// vals, each with its optimal width classes.
func planColumn(vals []float64) colPlan {
	best := planPredictor(vals, predictorDelta)
	if dd := planPredictor(vals, predictorDoubleDelta); dd.size < best.size {
		return dd
	}
	return best
}

// planPredictor computes the optimal width classes for one predictor via a
// bit-length histogram: with prefix counts, every (w1, w2) pair is O(1), and
// only *occupied* bit lengths need considering — lowering a width to the
// largest occupied length at or below it never adds a bit, so the restricted
// sweep finds the same global minimum as the exhaustive 63×63 one at a
// fraction of the cost (the short per-ring columns of the binary wire format
// hit this planner thousands of times per response).
func planPredictor(vals []float64, predictor byte) colPlan {
	n := len(vals)
	plan := colPlan{predictor: predictor, w1: 1, w2: 1, size: packedColHeader}
	if n <= 1 {
		return plan
	}
	// cum[w] = number of residuals with 1 <= zigzag bit length <= w;
	// zero residuals cost nothing (tag 00 carries them).
	var cum [65]int
	eachResidual(vals, predictor, func(zz uint64) {
		cum[bits.Len64(zz)]++
	})
	cum[0] = 0
	var lens [63]byte // occupied bit lengths in the 1..63 payload range
	nl := 0
	for w := 1; w <= 63; w++ {
		if cum[w] > 0 {
			lens[nl] = byte(w)
			nl++
		}
		cum[w] += cum[w-1]
	}
	cum[64] += cum[63]
	bestBits := 64 * cum[64] // everything in the escape class (w1 = w2 = 1)
	for i := 0; i < nl; i++ {
		w1 := int(lens[i])
		for j := i; j < nl; j++ {
			w2 := int(lens[j])
			b := w1*cum[w1] + w2*(cum[w2]-cum[w1]) + 64*(cum[64]-cum[w2])
			if b < bestBits {
				bestBits = b
				plan.w1, plan.w2 = byte(w1), byte(w2)
			}
		}
	}
	tagBytes := (2*(n-1) + 7) / 8
	plan.size = packedColHeader + tagBytes + (bestBits+7)/8
	return plan
}

// eachResidual visits the zigzag residual of every entry after the first
// under the given predictor, operating on raw float64 bit patterns so the
// round trip is exact for every value, NaN payloads and signed zeros
// included.
func eachResidual(vals []float64, predictor byte, fn func(zz uint64)) {
	prev := math.Float64bits(vals[0])
	var prevDelta uint64
	for _, v := range vals[1:] {
		cur := math.Float64bits(v)
		delta := cur - prev
		r := delta
		if predictor == predictorDoubleDelta {
			r = delta - prevDelta
			prevDelta = delta
		}
		fn(zigzag(int64(r)))
		prev = cur
	}
}

// encodeColumn writes one column block into dst and returns its byte length.
func encodeColumn(dst []byte, vals []float64) int {
	plan := planColumn(vals)
	dst[0] = plan.predictor
	dst[1] = plan.w1
	dst[2] = plan.w2
	binary.LittleEndian.PutUint64(dst[3:11], math.Float64bits(vals[0]))
	n := len(vals)
	if n == 1 {
		return packedColHeader
	}
	tagBytes := (2*(n-1) + 7) / 8
	tags := dst[packedColHeader : packedColHeader+tagBytes]
	payload := dst[packedColHeader+tagBytes:]
	w1, w2 := uint(plan.w1), uint(plan.w2)
	var pos uint
	i := 0
	eachResidual(vals, plan.predictor, func(zz uint64) {
		l := uint(bits.Len64(zz))
		var tag byte
		switch {
		case l == 0:
			tag = 0
		case l <= w1:
			tag = 1
			pos = putBits(payload, pos, zz, w1)
		case l <= w2:
			tag = 2
			pos = putBits(payload, pos, zz, w2)
		default:
			tag = 3
			pos = putBits(payload, pos, zz, 64)
		}
		tags[i/4] |= tag << uint((i%4)*2)
		i++
	})
	return packedColHeader + tagBytes + int(pos+7)/8
}

// decodeColumn decodes a column block of n entries into out[:n].
func decodeColumn(src []byte, n int, out []float64) error {
	if len(src) < packedColHeader {
		return errors.New("column block truncated")
	}
	predictor, w1, w2 := src[0], uint(src[1]), uint(src[2])
	if predictor > predictorDoubleDelta || w1 < 1 || w1 > 63 || w2 < w1 || w2 > 63 {
		return errors.New("column header corrupt")
	}
	prev := binary.LittleEndian.Uint64(src[3:11])
	out[0] = math.Float64frombits(prev)
	if n == 1 {
		return nil
	}
	tagBytes := (2*(n-1) + 7) / 8
	if len(src) < packedColHeader+tagBytes {
		return errors.New("column block truncated")
	}
	tags := src[packedColHeader : packedColHeader+tagBytes]
	payload := src[packedColHeader+tagBytes:]
	// The payload length was rounded up to whole bytes; bounds are checked
	// by the reads below via the slice length.
	avail := uint(len(payload)) * 8
	var pos uint
	var prevDelta uint64
	for i := 1; i < n; i++ {
		tag := (tags[(i-1)/4] >> uint(((i-1)%4)*2)) & 3
		var zz uint64
		var w uint
		switch tag {
		case 0:
			w = 0
		case 1:
			w = w1
		case 2:
			w = w2
		case 3:
			w = 64
		}
		if w > 0 {
			if pos+w > avail {
				return errors.New("column payload truncated")
			}
			zz, pos = getBits(payload, pos, w)
		}
		r := uint64(unzigzag(zz))
		delta := r
		if predictor == predictorDoubleDelta {
			delta = prevDelta + r
			prevDelta = delta
		}
		prev += delta
		out[i] = math.Float64frombits(prev)
	}
	return nil
}

// zigzag maps signed residuals to unsigned so small magnitudes of either
// sign get short bit lengths.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

func unzigzag(z uint64) int64 { return int64(z>>1) ^ -int64(z&1) }

// putBits writes the low n bits of v at bit position pos (LSB-first within
// each byte) and returns the new position. buf must be zeroed past pos.
func putBits(buf []byte, pos uint, v uint64, n uint) uint {
	for n > 0 {
		idx := pos >> 3
		off := pos & 7
		take := 8 - off
		if take > n {
			take = n
		}
		buf[idx] |= byte(v << off)
		v >>= take
		pos += take
		n -= take
	}
	return pos
}

// getBits reads n bits at bit position pos and returns the value and the new
// position.
func getBits(buf []byte, pos, n uint) (uint64, uint) {
	var v uint64
	var got uint
	for got < n {
		idx := pos >> 3
		off := pos & 7
		take := 8 - off
		if take > n-got {
			take = n - got
		}
		v |= (uint64(buf[idx]>>off) & (1<<take - 1)) << got
		pos += take
		got += take
	}
	return v, pos
}
