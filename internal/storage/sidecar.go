package storage

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Interval sidecar: a packed columnar segment holding one (lo, hi) float64
// pair per heap-file record, in heap-file order. The filter step of a value
// query needs only these two numbers per cell, and a 4 KiB sidecar page
// holds ~255 of them versus a handful of full cell records per heap page —
// so scanning the sidecar instead of cell pages cuts the filter's page I/O
// by more than an order of magnitude (the Lawson et al. precomputed-metadata
// trick, applied to the paper's §2.2.2 filter step).
//
// Page layout (little endian):
//
//	[0:4)   magic "FSC1"
//	[4:8)   count u32 — intervals stored in this page
//	[8:16)  first u64 — global position of the page's first interval
//	[16:16+8·perPage)          lo column, count used
//	[16+8·perPage:16+16·perPage) hi column, count used
//
// The hi column starts at a fixed offset so a partially filled tail page
// decodes with the same strides as a full one. Pages are allocated
// back-to-back, so a sidecar scan is one sequential run charged at
// sequential cost after its first page.
const (
	sidecarHeaderSize = 16
	sidecarEntrySize  = 16
)

var sidecarMagic = [4]byte{'F', 'S', 'C', '1'}

// IntervalSidecar addresses a built (or reopened) sidecar segment.
type IntervalSidecar struct {
	first   PageID
	pages   int
	count   int
	perPage int
}

// SidecarEntriesPerPage returns how many intervals fit in one sidecar page.
func SidecarEntriesPerPage(pageSize int) int {
	return (pageSize - sidecarHeaderSize) / sidecarEntrySize
}

// BuildIntervalSidecar writes the interval columns to freshly allocated,
// physically contiguous pages on pager. lo and hi must be the per-record
// bounds in heap-file order. The writes go through the pager's write path,
// so — like heap-file construction — they are counted but not charged to the
// simulated read clock.
func BuildIntervalSidecar(pager *Pager, lo, hi []float64) (*IntervalSidecar, error) {
	if len(lo) != len(hi) {
		return nil, fmt.Errorf("storage: sidecar columns differ: %d vs %d", len(lo), len(hi))
	}
	ps := pager.PageSize()
	perPage := SidecarEntriesPerPage(ps)
	if perPage < 1 {
		return nil, fmt.Errorf("storage: page size %d too small for sidecar", ps)
	}
	s := &IntervalSidecar{perPage: perPage, count: len(lo)}
	buf := make([]byte, ps)
	for base := 0; base < len(lo); base += perPage {
		n := len(lo) - base
		if n > perPage {
			n = perPage
		}
		for i := range buf {
			buf[i] = 0
		}
		copy(buf[0:4], sidecarMagic[:])
		binary.LittleEndian.PutUint32(buf[4:8], uint32(n))
		binary.LittleEndian.PutUint64(buf[8:16], uint64(base))
		loOff := sidecarHeaderSize
		hiOff := sidecarHeaderSize + 8*perPage
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[loOff+8*i:], math.Float64bits(lo[base+i]))
			binary.LittleEndian.PutUint64(buf[hiOff+8*i:], math.Float64bits(hi[base+i]))
		}
		id, err := pager.Alloc()
		if err != nil {
			return nil, err
		}
		if s.pages == 0 {
			s.first = id
		} else if id != s.first+PageID(s.pages) {
			return nil, fmt.Errorf("storage: sidecar page %d not contiguous after %d", id, s.first)
		}
		if err := pager.WritePage(id, buf); err != nil {
			return nil, err
		}
		s.pages++
	}
	return s, nil
}

// OpenIntervalSidecar reopens a sidecar segment from its catalog geometry.
func OpenIntervalSidecar(pager *Pager, first PageID, pages, count int) (*IntervalSidecar, error) {
	perPage := SidecarEntriesPerPage(pager.PageSize())
	if perPage < 1 || pages < 0 || count < 0 ||
		count > pages*perPage || (pages > 0 && count <= (pages-1)*perPage) {
		return nil, fmt.Errorf("storage: sidecar geometry %d pages / %d entries invalid", pages, count)
	}
	return &IntervalSidecar{first: first, pages: pages, count: count, perPage: perPage}, nil
}

// FirstPage returns the segment's first page id.
func (s *IntervalSidecar) FirstPage() PageID { return s.first }

// NumPages returns the number of pages the segment occupies.
func (s *IntervalSidecar) NumPages() int { return s.pages }

// Count returns the number of intervals stored.
func (s *IntervalSidecar) Count() int { return s.count }

// ScanRange decodes the intervals of positions [start, end) through r,
// calling fn once per touched page with the global position of the first
// decoded entry and the packed lo/hi columns of the in-range entries (valid
// only during the call). Returning false stops the scan. Page reads are
// charged to r like any other query I/O; when r supports run reads (Pager
// and QueryCtx both do) the whole range is fetched through ReadRun, with
// per-page charges identical to a page-at-a-time loop.
func (s *IntervalSidecar) ScanRange(r PageReader, start, end int, fn func(base int, lo, hi []float64) bool) error {
	if start < 0 {
		start = 0
	}
	if end > s.count {
		end = s.count
	}
	if start >= end {
		return nil
	}
	firstPage := start / s.perPage
	lastPage := (end - 1) / s.perPage
	loCol := make([]float64, s.perPage)
	hiCol := make([]float64, s.perPage)
	decode := func(pi int, page []byte) (bool, error) {
		lo, hi, base, err := s.decodePage(pi, page, start, end, loCol, hiCol)
		if err != nil {
			return false, err
		}
		return fn(base, lo, hi), nil
	}
	if rr, ok := r.(RunReader); ok {
		var pageErr error
		pi := firstPage
		err := rr.ReadRun(s.first+PageID(firstPage), s.first+PageID(lastPage), func(_ PageID, page []byte) bool {
			more, err := decode(pi, page)
			pi++
			if err != nil {
				pageErr = err
				return false
			}
			return more
		})
		if err != nil {
			return err
		}
		return pageErr
	}
	buf := make([]byte, r.PageSize())
	for pi := firstPage; pi <= lastPage; pi++ {
		if err := r.ReadPage(s.first+PageID(pi), buf); err != nil {
			return err
		}
		more, err := decode(pi, buf)
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
	return nil
}

// PageFor returns the page id and the within-page entry index of global
// position pos — where a value update must patch the interval columns.
func (s *IntervalSidecar) PageFor(pos int) (PageID, int, error) {
	if pos < 0 || pos >= s.count {
		return InvalidPage, 0, fmt.Errorf("storage: sidecar position %d of %d", pos, s.count)
	}
	return s.first + PageID(pos/s.perPage), pos % s.perPage, nil
}

// PatchEntry overwrites entry idx of a sidecar page image with (lo, hi),
// validating the page header first so a torn or mismatched image fails the
// update instead of silently corrupting the columns. The image is modified in
// place; callers stage it as a copy-on-write overlay.
func (s *IntervalSidecar) PatchEntry(page []byte, pi PageID, idx int, lo, hi float64) error {
	if [4]byte(page[0:4]) != sidecarMagic {
		return fmt.Errorf("storage: sidecar page %d: bad magic", pi)
	}
	n := int(binary.LittleEndian.Uint32(page[4:8]))
	pageBase := int(binary.LittleEndian.Uint64(page[8:16]))
	if pageBase != int(pi-s.first)*s.perPage || idx < 0 || idx >= n {
		return fmt.Errorf("storage: sidecar page %d: entry %d of %d invalid", pi, idx, n)
	}
	binary.LittleEndian.PutUint64(page[sidecarHeaderSize+8*idx:], math.Float64bits(lo))
	binary.LittleEndian.PutUint64(page[sidecarHeaderSize+8*s.perPage+8*idx:], math.Float64bits(hi))
	return nil
}

// decodePage validates one sidecar page and decodes its entries overlapping
// [start, end) into the column scratch, returning the trimmed columns and
// the global position of their first entry.
func (s *IntervalSidecar) decodePage(pi int, page []byte, start, end int, loCol, hiCol []float64) ([]float64, []float64, int, error) {
	if [4]byte(page[0:4]) != sidecarMagic {
		return nil, nil, 0, fmt.Errorf("storage: sidecar page %d: bad magic", pi)
	}
	n := int(binary.LittleEndian.Uint32(page[4:8]))
	pageBase := int(binary.LittleEndian.Uint64(page[8:16]))
	if n > s.perPage || pageBase != pi*s.perPage {
		return nil, nil, 0, fmt.Errorf("storage: sidecar page %d: corrupt header", pi)
	}
	from, to := 0, n
	if start > pageBase {
		from = start - pageBase
	}
	if end < pageBase+n {
		to = end - pageBase
	}
	if from >= to {
		return nil, nil, 0, fmt.Errorf("storage: sidecar page %d: empty overlap", pi)
	}
	loOff := sidecarHeaderSize
	hiOff := sidecarHeaderSize + 8*s.perPage
	k := 0
	for i := from; i < to; i++ {
		loCol[k] = math.Float64frombits(binary.LittleEndian.Uint64(page[loOff+8*i:]))
		hiCol[k] = math.Float64frombits(binary.LittleEndian.Uint64(page[hiOff+8*i:]))
		k++
	}
	return loCol[:k], hiCol[:k], pageBase + from, nil
}
