// Package storage provides the paged storage substrate of fielddb: fixed-size
// pages, in-memory and file-backed disks, an LRU buffer pool, slotted heap
// files, and — central to reproducing the paper's measurements — an I/O
// accounting layer with a simulated disk clock that distinguishes sequential
// from random page accesses.
//
// The paper's experiments use a 4 KiB page size and report query execution
// time dominated by disk I/O. All index structures in fielddb (the R*-tree
// over subfield intervals, the Hilbert-ordered cell heap file) are charged
// through a Pager so that LinearScan, I-All and I-Hilbert are compared under
// one consistent cost model.
package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// DefaultPageSize is the page size used throughout the paper's experiments.
const DefaultPageSize = 4096

// PageID identifies a page within a Disk. Pages are numbered from 0.
type PageID uint32

// InvalidPage is a sentinel PageID that no valid page carries.
const InvalidPage = PageID(^uint32(0))

// ErrPageOutOfRange is returned when reading a page that was never allocated.
var ErrPageOutOfRange = errors.New("storage: page out of range")

// Disk is a flat array of fixed-size pages.
type Disk interface {
	// PageSize returns the fixed size of every page in bytes.
	PageSize() int
	// NumPages returns the number of allocated pages.
	NumPages() int
	// ReadPage copies page id into buf, which must be PageSize() long.
	ReadPage(id PageID, buf []byte) error
	// WritePage stores buf (PageSize() bytes) as page id. The page must
	// have been allocated.
	WritePage(id PageID, buf []byte) error
	// Alloc appends a zeroed page and returns its id.
	Alloc() (PageID, error)
	// Close releases underlying resources.
	Close() error
}

// RunDisk is an optional Disk capability: reading a contiguous run of pages
// with one lock acquisition instead of one per page. It is deliberately not
// part of the Disk interface — wrappers that embed a Disk (fault injectors,
// tracing shims) stay correct because the Pager type-asserts the concrete
// disk and falls back to per-page ReadPage when the capability is absent.
type RunDisk interface {
	// ReadRun copies pages first..first+len(bufs)-1 into bufs, each of
	// which must be PageSize() long.
	ReadRun(first PageID, bufs [][]byte) error
}

// MemDisk is an in-memory Disk. It is the default substrate for experiments:
// real I/O latency is replaced by the Pager's simulated clock, which makes
// runs reproducible on any machine.
type MemDisk struct {
	mu       sync.RWMutex
	pageSize int
	pages    [][]byte
}

// NewMemDisk returns an empty in-memory disk with the given page size.
func NewMemDisk(pageSize int) *MemDisk {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &MemDisk{pageSize: pageSize}
}

// PageSize implements Disk.
func (d *MemDisk) PageSize() int { return d.pageSize }

// NumPages implements Disk.
func (d *MemDisk) NumPages() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pages)
}

// ReadPage implements Disk.
func (d *MemDisk) ReadPage(id PageID, buf []byte) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, len(d.pages))
	}
	copy(buf, d.pages[id])
	return nil
}

// ReadRun implements RunDisk under a single RLock.
func (d *MemDisk) ReadRun(first PageID, bufs [][]byte) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if n := int(first) + len(bufs); n > len(d.pages) {
		return fmt.Errorf("%w: read run %d+%d of %d", ErrPageOutOfRange, first, len(bufs), len(d.pages))
	}
	for i, buf := range bufs {
		copy(buf, d.pages[first+PageID(i)])
	}
	return nil
}

// WritePage implements Disk.
func (d *MemDisk) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("%w: write %d of %d", ErrPageOutOfRange, id, len(d.pages))
	}
	copy(d.pages[id], buf)
	return nil
}

// Alloc implements Disk.
func (d *MemDisk) Alloc() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pages = append(d.pages, make([]byte, d.pageSize))
	return PageID(len(d.pages) - 1), nil
}

// Close implements Disk.
func (d *MemDisk) Close() error { return nil }

// FileDisk is a Disk backed by a single flat file of concatenated pages.
type FileDisk struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	numPages int
}

// OpenFileDisk opens (creating if necessary) a file-backed disk. An existing
// file must contain a whole number of pages of the given size.
func OpenFileDisk(path string, pageSize int) (*FileDisk, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if st.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d is not a multiple of page size %d", path, st.Size(), pageSize)
	}
	return &FileDisk{f: f, pageSize: pageSize, numPages: int(st.Size() / int64(pageSize))}, nil
}

// PageSize implements Disk.
func (d *FileDisk) PageSize() int { return d.pageSize }

// NumPages implements Disk.
func (d *FileDisk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.numPages
}

// ReadPage implements Disk.
func (d *FileDisk) ReadPage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= d.numPages {
		return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, d.numPages)
	}
	_, err := d.f.ReadAt(buf[:d.pageSize], int64(id)*int64(d.pageSize))
	if err != nil && err != io.EOF {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// ReadRun implements RunDisk: one lock acquisition and one positioned read
// per page of the run.
func (d *FileDisk) ReadRun(first PageID, bufs [][]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n := int(first) + len(bufs); n > d.numPages {
		return fmt.Errorf("%w: read run %d+%d of %d", ErrPageOutOfRange, first, len(bufs), d.numPages)
	}
	for i, buf := range bufs {
		id := first + PageID(i)
		_, err := d.f.ReadAt(buf[:d.pageSize], int64(id)*int64(d.pageSize))
		if err != nil && err != io.EOF {
			return fmt.Errorf("storage: read page %d: %w", id, err)
		}
	}
	return nil
}

// WritePage implements Disk.
func (d *FileDisk) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= d.numPages {
		return fmt.Errorf("%w: write %d of %d", ErrPageOutOfRange, id, d.numPages)
	}
	if _, err := d.f.WriteAt(buf[:d.pageSize], int64(id)*int64(d.pageSize)); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// Alloc implements Disk.
func (d *FileDisk) Alloc() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := PageID(d.numPages)
	zero := make([]byte, d.pageSize)
	if _, err := d.f.WriteAt(zero, int64(id)*int64(d.pageSize)); err != nil {
		return InvalidPage, fmt.Errorf("storage: alloc page %d: %w", id, err)
	}
	d.numPages++
	return id, nil
}

// Close implements Disk.
func (d *FileDisk) Close() error { return d.f.Close() }

var (
	_ RunDisk = (*MemDisk)(nil)
	_ RunDisk = (*FileDisk)(nil)
)
