package storage

// Exported surface of the FSC2 column codec (sidecar.go): the serving tier's
// binary wire format packs geometry coordinates and per-member stat columns
// with the same predictor + zigzag + width-class bit-packing the packed
// interval sidecar uses on disk, so one codec — property-tested against
// adversarial columns — backs both the storage plane and the wire.
//
// The codec operates on raw float64 bit patterns, so round trips are exact
// for every value (NaN payloads and signed zeros included), and integer
// columns can ride it losslessly through math.Float64frombits: consecutive
// small integers have small bit-pattern deltas, which is exactly the case the
// delta predictor compresses best.

// EncodeFloatColumn writes vals as one packed column block into dst and
// returns the encoded byte length. dst must be zeroed over its first
// MaxFloatColumnSize(len(vals)) bytes (the bit packer ORs into place) and at
// least that large; vals must be non-empty.
func EncodeFloatColumn(dst []byte, vals []float64) int {
	return encodeColumn(dst, vals)
}

// DecodeFloatColumn decodes a column block of n entries from src into
// out[:n]. src may extend past the column's end (the header bounds every
// read); out must hold at least n entries.
func DecodeFloatColumn(src []byte, n int, out []float64) error {
	return decodeColumn(src, n, out)
}

// MaxFloatColumnSize bounds the encoded size of an n-entry column: the
// header, the 2-bit tag array, and every residual at the full 64-bit width.
// The optimal width-class sweep never exceeds it.
func MaxFloatColumnSize(n int) int {
	if n <= 0 {
		return packedColHeader
	}
	return packedColHeader + (2*(n-1)+7)/8 + 8*(n-1)
}
