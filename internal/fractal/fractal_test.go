package fractal

import (
	"math"
	"testing"
)

func TestDiamondSquareValidation(t *testing.T) {
	if _, err := DiamondSquare(0, 0.5, 1); err == nil {
		t.Fatal("side 0 accepted")
	}
	if _, err := DiamondSquare(3, 0.5, 1); err == nil {
		t.Fatal("non-power-of-two side accepted")
	}
	if _, err := DiamondSquare(8, -0.1, 1); err == nil {
		t.Fatal("H < 0 accepted")
	}
	if _, err := DiamondSquare(8, 1.1, 1); err == nil {
		t.Fatal("H > 1 accepted")
	}
}

func TestDiamondSquareShapeAndDeterminism(t *testing.T) {
	g1, err := DiamondSquare(32, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(g1) != 33*33 {
		t.Fatalf("len = %d", len(g1))
	}
	for i, v := range g1 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite height at %d", i)
		}
	}
	g2, _ := DiamondSquare(32, 0.5, 42)
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatal("same seed produced different terrain")
		}
	}
	g3, _ := DiamondSquare(32, 0.5, 43)
	same := true
	for i := range g1 {
		if g1[i] != g3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical terrain")
	}
}

// roughness measures the mean absolute height difference between horizontally
// adjacent vertices, normalized by the total height range.
func roughness(g []float64, side int) float64 {
	n := side + 1
	mn, mx := g[0], g[0]
	for _, v := range g {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if mx == mn {
		return 0
	}
	sum, cnt := 0.0, 0
	for y := 0; y < n; y++ {
		for x := 0; x+1 < n; x++ {
			sum += math.Abs(g[y*n+x+1] - g[y*n+x])
			cnt++
		}
	}
	return sum / float64(cnt) / (mx - mn)
}

func TestRoughnessDecreasesWithH(t *testing.T) {
	// The paper: "With H set to 1.0 ... a very smooth fractal. With H set
	// to 0.0 ... something quite jagged." Average over several seeds to
	// avoid flakiness.
	avg := func(h float64) float64 {
		s := 0.0
		for seed := int64(0); seed < 5; seed++ {
			g, err := DiamondSquare(64, h, seed)
			if err != nil {
				t.Fatal(err)
			}
			s += roughness(g, 64)
		}
		return s / 5
	}
	r01, r05, r09 := avg(0.1), avg(0.5), avg(0.9)
	if !(r01 > r05 && r05 > r09) {
		t.Fatalf("roughness not monotone in H: H=0.1:%g H=0.5:%g H=0.9:%g", r01, r05, r09)
	}
	if r01 < 2*r09 {
		t.Fatalf("jagged (%g) vs smooth (%g) contrast too weak", r01, r09)
	}
}

func TestNormalize(t *testing.T) {
	g := []float64{-3, 0, 5}
	Normalize(g, 0, 1)
	if g[0] != 0 || g[2] != 1 {
		t.Fatalf("Normalize = %v", g)
	}
	if g[1] != 3.0/8 {
		t.Fatalf("mid value = %g, want 0.375", g[1])
	}
	// Constant input maps to midpoint.
	c := []float64{4, 4, 4}
	Normalize(c, 10, 20)
	for _, v := range c {
		if v != 15 {
			t.Fatalf("constant normalize = %v", c)
		}
	}
	// Empty input is a no-op.
	Normalize(nil, 0, 1)
}

func TestSide1(t *testing.T) {
	g, err := DiamondSquare(1, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 4 {
		t.Fatalf("len = %d", len(g))
	}
}

func BenchmarkDiamondSquare256(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := DiamondSquare(256, 0.7, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
