// Package fractal generates random fractal terrains with the diamond-square
// algorithm using midpoint displacement, exactly as the paper's §4.2: the
// grid is recursively subdivided, each pass computing diamond midpoints and
// square midpoints as the average of their four neighbours plus a random
// offset, and the random range shrinking by the factor 2^(-H) per pass.
//
// H in [0,1] is the roughness constant: H=1 halves the random range every
// pass (very smooth), H=0 keeps it constant (very jagged). Figure 10 of the
// paper shows H=0.2 vs H=0.8 surfaces; Figure 11 sweeps H over
// {0.1, 0.3, 0.6, 0.9}.
package fractal

import (
	"fmt"
	"math"
	"math/rand"
)

// DiamondSquare returns a (side+1) × (side+1) height grid in row-major
// order, with heights in [-1, 1] before any normalization drift. side must
// be a power of two. The generator is fully deterministic in seed.
func DiamondSquare(side int, h float64, seed int64) ([]float64, error) {
	if side < 1 || side&(side-1) != 0 {
		return nil, fmt.Errorf("fractal: side must be a positive power of two, got %d", side)
	}
	if h < 0 || h > 1 {
		return nil, fmt.Errorf("fractal: H must be in [0,1], got %g", h)
	}
	n := side + 1
	g := make([]float64, n*n)
	rng := rand.New(rand.NewSource(seed))

	at := func(x, y int) float64 { return g[y*n+x] }
	set := func(x, y int, v float64) { g[y*n+x] = v }

	// Initial heights chosen at random at the four corners, range [-1, 1].
	rangeScale := 1.0
	set(0, 0, rng.Float64()*2-1)
	set(side, 0, rng.Float64()*2-1)
	set(0, side, rng.Float64()*2-1)
	set(side, side, rng.Float64()*2-1)

	reduce := math.Pow(2, -h)
	for step := side; step > 1; step /= 2 {
		half := step / 2
		// Diamond step: center of every square = average of its four
		// corners plus a random displacement.
		for y := half; y < n; y += step {
			for x := half; x < n; x += step {
				avg := (at(x-half, y-half) + at(x+half, y-half) +
					at(x-half, y+half) + at(x+half, y+half)) / 4
				set(x, y, avg+(rng.Float64()*2-1)*rangeScale)
			}
		}
		// Square step: the remaining midpoints = average of their (up to
		// four) orthogonal neighbours plus a random displacement.
		for y := 0; y < n; y += half {
			x0 := half
			if (y/half)%2 == 1 {
				x0 = 0
			}
			for x := x0; x < n; x += step {
				sum, cnt := 0.0, 0
				if x-half >= 0 {
					sum += at(x-half, y)
					cnt++
				}
				if x+half < n {
					sum += at(x+half, y)
					cnt++
				}
				if y-half >= 0 {
					sum += at(x, y-half)
					cnt++
				}
				if y+half < n {
					sum += at(x, y+half)
					cnt++
				}
				set(x, y, sum/float64(cnt)+(rng.Float64()*2-1)*rangeScale)
			}
		}
		// The random value range is reduced by 2^(-H) each pass.
		rangeScale *= reduce
	}
	return g, nil
}

// Normalize rescales heights in place to [lo, hi]. A constant surface maps
// to the midpoint of the target range.
func Normalize(g []float64, lo, hi float64) {
	if len(g) == 0 {
		return
	}
	mn, mx := g[0], g[0]
	for _, v := range g {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if mx == mn {
		mid := (lo + hi) / 2
		for i := range g {
			g[i] = mid
		}
		return
	}
	scale := (hi - lo) / (mx - mn)
	for i := range g {
		g[i] = lo + (g[i]-mn)*scale
	}
}
