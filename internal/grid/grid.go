// Package grid implements the regular-grid DEM field model of the paper's
// Figure 1: sample points are measured at the vertices of a rectangular
// grid and an interpolation function (piecewise linear here) defines the
// value at every interior point, turning a conventional raster DEM into a
// continuous field.
package grid

import (
	"fmt"
	"math"

	"fielddb/internal/field"
	"fielddb/internal/geom"
)

// DEM is a continuous field over a regular grid of rectangular cells.
// A DEM with nx × ny cells has (nx+1) × (ny+1) sample points at the grid
// vertices.
type DEM struct {
	origin   geom.Point
	dx, dy   float64
	nx, ny   int
	heights  []float64 // (nx+1) * (ny+1), row-major by vertex row
	valRange geom.Interval
}

// New builds a DEM with nx × ny cells starting at origin with cell size
// dx × dy, taking ownership of heights, which must hold (nx+1)*(ny+1)
// vertex samples in row-major order (index = row*(nx+1) + col).
func New(origin geom.Point, dx, dy float64, nx, ny int, heights []float64) (*DEM, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("grid: need at least 1x1 cells, got %dx%d", nx, ny)
	}
	if dx <= 0 || dy <= 0 {
		return nil, fmt.Errorf("grid: cell size must be positive, got %gx%g", dx, dy)
	}
	if want := (nx + 1) * (ny + 1); len(heights) != want {
		return nil, fmt.Errorf("grid: %d heights for %dx%d cells, want %d", len(heights), nx, ny, want)
	}
	vr := geom.EmptyInterval()
	for _, h := range heights {
		if math.IsNaN(h) || math.IsInf(h, 0) {
			return nil, fmt.Errorf("grid: non-finite height %g", h)
		}
		if h < vr.Lo {
			vr.Lo = h
		}
		if h > vr.Hi {
			vr.Hi = h
		}
	}
	return &DEM{origin: origin, dx: dx, dy: dy, nx: nx, ny: ny, heights: heights, valRange: vr}, nil
}

// FromFunc builds a DEM by sampling f at every grid vertex.
func FromFunc(origin geom.Point, dx, dy float64, nx, ny int, f func(x, y float64) float64) (*DEM, error) {
	heights := make([]float64, (nx+1)*(ny+1))
	for r := 0; r <= ny; r++ {
		for c := 0; c <= nx; c++ {
			heights[r*(nx+1)+c] = f(origin.X+float64(c)*dx, origin.Y+float64(r)*dy)
		}
	}
	return New(origin, dx, dy, nx, ny, heights)
}

// NumCells implements field.Field.
func (d *DEM) NumCells() int { return d.nx * d.ny }

// Size returns the cell grid dimensions (nx, ny).
func (d *DEM) Size() (nx, ny int) { return d.nx, d.ny }

// VertexHeight returns the sample at vertex (col, row).
func (d *DEM) VertexHeight(col, row int) float64 {
	return d.heights[row*(d.nx+1)+col]
}

// Cell implements field.Field. Cell ids are row-major: id = row*nx + col.
// Vertices are counter-clockwise from the min corner, matching the quad
// convention of field.Band.
func (d *DEM) Cell(id field.CellID, dst *field.Cell) *field.Cell {
	col := int(id) % d.nx
	row := int(id) / d.nx
	x0 := d.origin.X + float64(col)*d.dx
	y0 := d.origin.Y + float64(row)*d.dy
	if cap(dst.Vertices) < 4 {
		dst.Vertices = make([]geom.Point, 4)
	}
	dst.Vertices = dst.Vertices[:4]
	if cap(dst.Values) < 4 {
		dst.Values = make([]float64, 4)
	}
	dst.Values = dst.Values[:4]
	dst.ID = id
	dst.Vertices[0] = geom.Pt(x0, y0)
	dst.Vertices[1] = geom.Pt(x0+d.dx, y0)
	dst.Vertices[2] = geom.Pt(x0+d.dx, y0+d.dy)
	dst.Vertices[3] = geom.Pt(x0, y0+d.dy)
	base := row*(d.nx+1) + col
	dst.Values[0] = d.heights[base]
	dst.Values[1] = d.heights[base+1]
	dst.Values[2] = d.heights[base+d.nx+2]
	dst.Values[3] = d.heights[base+d.nx+1]
	return dst
}

// Bounds implements field.Field.
func (d *DEM) Bounds() geom.Rect {
	return geom.Rect{
		Min: d.origin,
		Max: geom.Pt(d.origin.X+float64(d.nx)*d.dx, d.origin.Y+float64(d.ny)*d.dy),
	}
}

// ValueRange implements field.Field.
func (d *DEM) ValueRange() geom.Interval { return d.valRange }

// Locate implements field.Field in O(1) by direct grid arithmetic.
func (d *DEM) Locate(p geom.Point) (field.CellID, bool) {
	if !d.Bounds().ContainsPoint(p) {
		return 0, false
	}
	col := int((p.X - d.origin.X) / d.dx)
	row := int((p.Y - d.origin.Y) / d.dy)
	if col >= d.nx {
		col = d.nx - 1
	}
	if row >= d.ny {
		row = d.ny - 1
	}
	return field.CellID(row*d.nx + col), true
}

var _ field.Field = (*DEM)(nil)
