package grid

import (
	"math"
	"math/rand"
	"testing"

	"fielddb/internal/field"
	"fielddb/internal/geom"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(geom.Pt(0, 0), 1, 1, 0, 3, nil); err == nil {
		t.Fatal("0 cells accepted")
	}
	if _, err := New(geom.Pt(0, 0), 0, 1, 2, 2, make([]float64, 9)); err == nil {
		t.Fatal("zero cell size accepted")
	}
	if _, err := New(geom.Pt(0, 0), 1, 1, 2, 2, make([]float64, 5)); err == nil {
		t.Fatal("wrong height count accepted")
	}
	h := make([]float64, 9)
	h[3] = math.NaN()
	if _, err := New(geom.Pt(0, 0), 1, 1, 2, 2, h); err == nil {
		t.Fatal("NaN height accepted")
	}
}

func TestFigure1DEM(t *testing.T) {
	// The 3×3 DEM of Figure 1 with the paper's vertex heights:
	// row 0 (bottom): 40 48 56 80 / row 1: 50 60 90 84 / row 2: 64 74 110 88
	// row 3: 80 80 110 120. (Values transcribed per the figure's layout.)
	heights := []float64{
		40, 48, 56, 80,
		50, 60, 90, 84,
		64, 74, 110, 88,
		80, 80, 110, 120,
	}
	d, err := New(geom.Pt(0, 0), 1, 1, 3, 3, heights)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumCells() != 9 {
		t.Fatalf("NumCells = %d", d.NumCells())
	}
	var c field.Cell
	d.Cell(0, &c)
	// Cell c1 (bottom-left) has corners 40, 48, 60, 50.
	want := []float64{40, 48, 60, 50}
	for i, w := range want {
		if c.Values[i] != w {
			t.Fatalf("cell 0 value %d = %g, want %g", i, c.Values[i], w)
		}
	}
	iv := c.Interval()
	if iv.Lo != 40 || iv.Hi != 60 {
		t.Fatalf("cell 0 interval = %v", iv)
	}
	// The query of §2.2.2: cells whose interval intersects [55, 59].
	var hits []field.CellID
	for id := 0; id < d.NumCells(); id++ {
		d.Cell(field.CellID(id), &c)
		if c.Interval().Intersects(geom.Interval{Lo: 55, Hi: 59}) {
			hits = append(hits, field.CellID(id))
		}
	}
	// The paper retrieves candidate cells <c1, c2, c3, c4> (ids 0..3).
	wantHits := []field.CellID{0, 1, 2, 3}
	if len(hits) != len(wantHits) {
		t.Fatalf("candidates = %v, want %v", hits, wantHits)
	}
	for i := range hits {
		if hits[i] != wantHits[i] {
			t.Fatalf("candidates = %v, want %v", hits, wantHits)
		}
	}
}

func TestCellGeometry(t *testing.T) {
	d, err := FromFunc(geom.Pt(10, 20), 2, 3, 4, 5, func(x, y float64) float64 { return x + y })
	if err != nil {
		t.Fatal(err)
	}
	var c field.Cell
	d.Cell(d.idOf(t, 2, 3), &c)
	wantMin := geom.Pt(10+2*2, 20+3*3)
	if c.Vertices[0] != wantMin {
		t.Fatalf("min corner = %v, want %v", c.Vertices[0], wantMin)
	}
	if c.Vertices[2] != geom.Pt(wantMin.X+2, wantMin.Y+3) {
		t.Fatalf("max corner = %v", c.Vertices[2])
	}
	// Monotonic data: value at each vertex is x + y.
	for i, v := range c.Vertices {
		if c.Values[i] != v.X+v.Y {
			t.Fatalf("vertex %d value %g, want %g", i, c.Values[i], v.X+v.Y)
		}
	}
	b := d.Bounds()
	if b.Min != geom.Pt(10, 20) || b.Max != geom.Pt(18, 35) {
		t.Fatalf("Bounds = %v", b)
	}
}

// idOf computes a cell id from (col, row) for tests.
func (d *DEM) idOf(t *testing.T, col, row int) field.CellID {
	t.Helper()
	nx, _ := d.Size()
	return field.CellID(row*nx + col)
}

func TestLocate(t *testing.T) {
	d, _ := FromFunc(geom.Pt(0, 0), 1, 1, 8, 8, func(x, y float64) float64 { return 0 })
	id, ok := d.Locate(geom.Pt(3.5, 2.5))
	if !ok || id != field.CellID(2*8+3) {
		t.Fatalf("Locate = %d, %v", id, ok)
	}
	// Border points clamp into the last cell.
	id, ok = d.Locate(geom.Pt(8, 8))
	if !ok || id != field.CellID(63) {
		t.Fatalf("Locate(corner) = %d, %v", id, ok)
	}
	if _, ok := d.Locate(geom.Pt(-0.1, 4)); ok {
		t.Fatal("outside point located")
	}
	if _, ok := d.Locate(geom.Pt(4, 9)); ok {
		t.Fatal("outside point located")
	}
}

func TestValueAtContinuity(t *testing.T) {
	// The DEM of a linear function reproduces it exactly everywhere —
	// the continuity property the representation is meant to capture.
	d, _ := FromFunc(geom.Pt(0, 0), 1, 1, 10, 10, func(x, y float64) float64 { return 3*x - 2*y + 5 })
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		p := geom.Pt(rng.Float64()*10, rng.Float64()*10)
		got, ok := field.ValueAt(d, p)
		if !ok {
			t.Fatalf("ValueAt(%v) outside", p)
		}
		want := 3*p.X - 2*p.Y + 5
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("ValueAt(%v) = %g, want %g", p, got, want)
		}
	}
}

func TestValueRange(t *testing.T) {
	d, _ := FromFunc(geom.Pt(0, 0), 1, 1, 4, 4, func(x, y float64) float64 { return x * y })
	vr := d.ValueRange()
	if vr.Lo != 0 || vr.Hi != 16 {
		t.Fatalf("ValueRange = %v", vr)
	}
	// Cross-check against the generic scan.
	if got := field.ValueRangeOf(d); got != vr {
		t.Fatalf("ValueRangeOf = %v, want %v", got, vr)
	}
}

func TestVertexHeight(t *testing.T) {
	d, _ := FromFunc(geom.Pt(0, 0), 1, 1, 2, 2, func(x, y float64) float64 { return 10*y + x })
	if got := d.VertexHeight(1, 2); got != 21 {
		t.Fatalf("VertexHeight(1,2) = %g", got)
	}
}
