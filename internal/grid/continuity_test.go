package grid

import (
	"math"
	"math/rand"
	"testing"

	"fielddb/internal/field"
	"fielddb/internal/fractal"
	"fielddb/internal/geom"
)

// TestInterpolationContinuityAcrossCells verifies the defining property of
// the continuous-field representation (§2.1 / Figure 1): the interpolated
// surface has no jumps across cell boundaries — the within-cell variation
// is preserved and adjacent cells agree along their shared edge.
func TestInterpolationContinuityAcrossCells(t *testing.T) {
	heights, err := fractal.DiamondSquare(16, 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	fractal.Normalize(heights, 0, 50)
	d, err := New(geom.Pt(0, 0), 1, 1, 16, 16, heights)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	var left, right field.Cell
	for trial := 0; trial < 300; trial++ {
		// A random interior vertical edge between cells (col,row) and
		// (col+1,row), probed at a random height along the edge.
		col := rng.Intn(15)
		row := rng.Intn(16)
		y := float64(row) + rng.Float64()
		x := float64(col + 1)
		d.Cell(field.CellID(row*16+col), &left)
		d.Cell(field.CellID(row*16+col+1), &right)
		wl, okl := field.Interpolate(&left, geom.Pt(x, y))
		wr, okr := field.Interpolate(&right, geom.Pt(x, y))
		if !okl || !okr {
			t.Fatalf("edge point (%g,%g) not inside both cells", x, y)
		}
		if math.Abs(wl-wr) > 1e-9 {
			t.Fatalf("discontinuity at (%g,%g): %g vs %g", x, y, wl, wr)
		}
		// Horizontal edges too.
		col = rng.Intn(16)
		row = rng.Intn(15)
		x = float64(col) + rng.Float64()
		y = float64(row + 1)
		d.Cell(field.CellID(row*16+col), &left)
		d.Cell(field.CellID((row+1)*16+col), &right)
		wl, okl = field.Interpolate(&left, geom.Pt(x, y))
		wr, okr = field.Interpolate(&right, geom.Pt(x, y))
		if !okl || !okr {
			t.Fatalf("edge point (%g,%g) not inside both cells", x, y)
		}
		if math.Abs(wl-wr) > 1e-9 {
			t.Fatalf("discontinuity at (%g,%g): %g vs %g", x, y, wl, wr)
		}
	}
}

// TestBandTilesCell checks that complementary bands partition each cell:
// area(w < t) + area(w >= t) = cell area.
func TestBandTilesCell(t *testing.T) {
	heights, _ := fractal.DiamondSquare(8, 0.5, 4)
	fractal.Normalize(heights, 0, 10)
	d, _ := New(geom.Pt(0, 0), 1, 1, 8, 8, heights)
	var c field.Cell
	rng := rand.New(rand.NewSource(11))
	for id := 0; id < d.NumCells(); id++ {
		d.Cell(field.CellID(id), &c)
		iv := c.Interval()
		tsplit := iv.Lo + rng.Float64()*iv.Length()
		lowArea := 0.0
		for _, pg := range field.Band(&c, iv.Lo-1, tsplit) {
			lowArea += pg.Area()
		}
		highArea := 0.0
		for _, pg := range field.Band(&c, tsplit, iv.Hi+1) {
			highArea += pg.Area()
		}
		if math.Abs(lowArea+highArea-1) > 1e-6 {
			t.Fatalf("cell %d: bands cover %g of unit cell (split %g in %v)",
				id, lowArea+highArea, tsplit, iv)
		}
	}
}
