package grid

import (
	"fmt"
	"math"

	"fielddb/internal/field"
)

// Live-update support (field.Mutable): DEM sample indices are the row-major
// vertex indices already used by the heights slice, index = row*(nx+1)+col.
// Only values move — the grid geometry is fixed — so every cell keeps its
// encoded record length under updates.
//
// Mutation entry points are not synchronized: the caller (the core update
// engine) serializes updaters and publishes changes to readers through MVCC
// snapshots, never through this in-memory model.

// NumSamples implements field.Mutable.
func (d *DEM) NumSamples() int { return (d.nx + 1) * (d.ny + 1) }

// SampleValue implements field.Mutable.
func (d *DEM) SampleValue(i int) float64 { return d.heights[i] }

// SetSample implements field.Mutable, keeping ValueRange exact: growing the
// range is O(1); shrinking it (moving a sample that sat on an extreme)
// rescans the heights.
func (d *DEM) SetSample(i int, v float64) error {
	if i < 0 || i >= len(d.heights) {
		return fmt.Errorf("grid: sample %d of %d", i, len(d.heights))
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("grid: non-finite height %g", v)
	}
	old := d.heights[i]
	d.heights[i] = v
	if old <= d.valRange.Lo || old >= d.valRange.Hi {
		d.rescanRange()
		return nil
	}
	if v < d.valRange.Lo {
		d.valRange.Lo = v
	}
	if v > d.valRange.Hi {
		d.valRange.Hi = v
	}
	return nil
}

func (d *DEM) rescanRange() {
	vr := d.valRange
	vr.Lo, vr.Hi = math.Inf(1), math.Inf(-1)
	for _, h := range d.heights {
		if h < vr.Lo {
			vr.Lo = h
		}
		if h > vr.Hi {
			vr.Hi = h
		}
	}
	d.valRange = vr
}

// IncidentCells implements field.Mutable: a vertex touches at most the four
// cells around it, fewer on the boundary.
func (d *DEM) IncidentCells(i int, dst []field.CellID) []field.CellID {
	col := i % (d.nx + 1)
	row := i / (d.nx + 1)
	for _, r := range [2]int{row - 1, row} {
		if r < 0 || r >= d.ny {
			continue
		}
		for _, c := range [2]int{col - 1, col} {
			if c < 0 || c >= d.nx {
				continue
			}
			dst = append(dst, field.CellID(r*d.nx+c))
		}
	}
	return dst
}

var _ field.Mutable = (*DEM)(nil)
