package field

import (
	"math"
	"math/rand"
	"testing"

	"fielddb/internal/geom"
)

// gridStub is a minimal Field over an nx×ny unit grid sampling fn at the
// vertices, avoiding an import cycle with internal/grid.
type gridStub struct {
	nx, ny int
	fn     func(x, y float64) float64
}

func (g *gridStub) NumCells() int { return g.nx * g.ny }

func (g *gridStub) Cell(id CellID, dst *Cell) *Cell {
	col, row := int(id)%g.nx, int(id)/g.nx
	x0, y0 := float64(col), float64(row)
	dst.ID = id
	dst.Vertices = append(dst.Vertices[:0],
		geom.Pt(x0, y0), geom.Pt(x0+1, y0), geom.Pt(x0+1, y0+1), geom.Pt(x0, y0+1))
	dst.Values = append(dst.Values[:0],
		g.fn(x0, y0), g.fn(x0+1, y0), g.fn(x0+1, y0+1), g.fn(x0, y0+1))
	return dst
}

func (g *gridStub) Bounds() geom.Rect {
	return geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(float64(g.nx), float64(g.ny))}
}

func (g *gridStub) ValueRange() geom.Interval { return ValueRangeOf(g) }

func (g *gridStub) Locate(p geom.Point) (CellID, bool) {
	if !g.Bounds().ContainsPoint(p) {
		return 0, false
	}
	col, row := int(p.X), int(p.Y)
	if col >= g.nx {
		col = g.nx - 1
	}
	if row >= g.ny {
		row = g.ny - 1
	}
	return CellID(row*g.nx + col), true
}

func TestNewVectorFieldValidation(t *testing.T) {
	u := &gridStub{nx: 4, ny: 4, fn: func(x, y float64) float64 { return x }}
	if _, err := NewVectorField(u); err == nil {
		t.Fatal("single component accepted")
	}
	mismatch := &gridStub{nx: 5, ny: 4, fn: func(x, y float64) float64 { return y }}
	if _, err := NewVectorField(u, mismatch); err == nil {
		t.Fatal("mismatched cell counts accepted")
	}
}

func TestVectorFieldEvaluation(t *testing.T) {
	u := &gridStub{nx: 8, ny: 8, fn: func(x, y float64) float64 { return 3 }}
	v := &gridStub{nx: 8, ny: 8, fn: func(x, y float64) float64 { return 4 }}
	w, err := NewVectorField(u, v)
	if err != nil {
		t.Fatal(err)
	}
	if w.Dims() != 2 || w.NumCells() != 64 {
		t.Fatalf("dims/cells = %d/%d", w.Dims(), w.NumCells())
	}
	if w.Component(0) != Field(u) {
		t.Fatal("component accessor broken")
	}
	ws, ok := w.At(geom.Pt(2.5, 3.5))
	if !ok || ws[0] != 3 || ws[1] != 4 {
		t.Fatalf("At = %v, %v", ws, ok)
	}
	m, ok := w.MagnitudeAt(geom.Pt(2.5, 3.5))
	if !ok || math.Abs(m-5) > 1e-12 {
		t.Fatalf("magnitude = %g", m)
	}
	if _, ok := w.At(geom.Pt(-1, -1)); ok {
		t.Fatal("outside point evaluated")
	}
	if _, ok := w.MagnitudeAt(geom.Pt(-1, -1)); ok {
		t.Fatal("outside magnitude evaluated")
	}
}

func TestMagnitudeBoundsAreConservative(t *testing.T) {
	// Wind-like field: u and v vary smoothly and change sign.
	u := &gridStub{nx: 8, ny: 8, fn: func(x, y float64) float64 { return math.Sin(x/2) * 5 }}
	v := &gridStub{nx: 8, ny: 8, fn: func(x, y float64) float64 { return math.Cos(y/3)*4 - 2 }}
	w, err := NewVectorField(u, v)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for id := 0; id < w.NumCells(); id++ {
		bounds := w.MagnitudeBounds(CellID(id))
		if bounds.IsEmpty() || bounds.Lo < 0 {
			t.Fatalf("cell %d: bad bounds %v", id, bounds)
		}
		// Sample magnitudes inside the cell; all must fall within bounds.
		col, row := id%8, id/8
		for s := 0; s < 30; s++ {
			p := geom.Pt(float64(col)+rng.Float64(), float64(row)+rng.Float64())
			m, ok := w.MagnitudeAt(p)
			if !ok {
				continue
			}
			if m < bounds.Lo-1e-9 || m > bounds.Hi+1e-9 {
				t.Fatalf("cell %d: magnitude %g outside bounds %v at %v", id, m, bounds, p)
			}
		}
	}
}

func TestMagnitudeBoundsZeroCrossing(t *testing.T) {
	// A component whose interval straddles zero contributes a zero lower
	// bound for its square.
	u := &gridStub{nx: 1, ny: 1, fn: func(x, y float64) float64 { return x*2 - 1 }} // [-1, 1]
	v := &gridStub{nx: 1, ny: 1, fn: func(x, y float64) float64 { return 3 }}
	w, _ := NewVectorField(u, v)
	b := w.MagnitudeBounds(0)
	if math.Abs(b.Lo-3) > 1e-12 {
		t.Fatalf("Lo = %g, want 3", b.Lo)
	}
	if math.Abs(b.Hi-math.Sqrt(10)) > 1e-12 {
		t.Fatalf("Hi = %g, want sqrt(10)", b.Hi)
	}
}
