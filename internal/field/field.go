// Package field defines the continuous-field abstraction of the paper's §2.1:
// a field is a pair (C, F) — a subdivision of the spatial domain into cells
// carrying sample points, and interpolation functions deriving the implicit
// value at every non-sampled position.
//
// Concrete models (the regular-grid DEM in internal/grid, the TIN in
// internal/tin) implement the Field interface; the value-query indexes in
// internal/core operate only on this interface plus the serialized cell
// records in the heap file.
package field

import (
	"fmt"
	"math"

	"fielddb/internal/band"
	"fielddb/internal/geom"
)

// CellID identifies a cell within one field, numbered 0..NumCells-1.
type CellID uint32

// Cell is one element of the subdivision: its sample points (vertices) and
// the measured values at them. Cells with 3 vertices are triangles
// (TIN cells); cells with 4 vertices are axis-aligned DEM quads with
// vertices in counter-clockwise order starting at the min corner.
type Cell struct {
	ID       CellID
	Vertices []geom.Point
	Values   []float64
}

// Interval returns the 1-D MBR of every value inside the cell. Linear
// interpolation attains its extremes at the sample points, so this is the
// min/max over the vertex values (the paper's note about interpolants that
// introduce interior extrema is handled by the Interpolator interface).
func (c *Cell) Interval() geom.Interval {
	iv := geom.EmptyInterval()
	for _, w := range c.Values {
		if w < iv.Lo {
			iv.Lo = w
		}
		if w > iv.Hi {
			iv.Hi = w
		}
	}
	return iv
}

// Bounds returns the spatial bounding rectangle of the cell.
func (c *Cell) Bounds() geom.Rect { return geom.RectFromPoints(c.Vertices...) }

// Center returns the centroid of the cell's vertices — the position whose
// Hilbert value orders the cell (§3.1.2).
func (c *Cell) Center() geom.Point {
	var sx, sy float64
	for _, p := range c.Vertices {
		sx += p.X
		sy += p.Y
	}
	n := float64(len(c.Vertices))
	return geom.Pt(sx/n, sy/n)
}

// Area returns the planar area of the cell polygon (shoelace formula over
// the vertex ring). The aggregate tier weighs cells by it, both when fitting
// area summaries and when an exact fallback accumulates matched area.
func (c *Cell) Area() float64 {
	n := len(c.Vertices)
	if n < 3 {
		return 0
	}
	sum := 0.0
	for i, p := range c.Vertices {
		q := c.Vertices[(i+1)%n]
		sum += p.Cross(q)
	}
	return math.Abs(sum) / 2
}

// Validate reports structural problems with the cell.
func (c *Cell) Validate() error {
	if len(c.Vertices) != len(c.Values) {
		return fmt.Errorf("field: cell %d has %d vertices but %d values", c.ID, len(c.Vertices), len(c.Values))
	}
	if len(c.Vertices) != 3 && len(c.Vertices) != 4 {
		return fmt.Errorf("field: cell %d has unsupported vertex count %d", c.ID, len(c.Vertices))
	}
	for i, w := range c.Values {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("field: cell %d value %d is %g", c.ID, i, w)
		}
	}
	return nil
}

// Field is a continuous scalar field (C, F).
type Field interface {
	// NumCells returns the number of cells in the subdivision.
	NumCells() int
	// Cell materializes the cell with the given id into dst (reusing its
	// slices when possible) and returns it.
	Cell(id CellID, dst *Cell) *Cell
	// Bounds returns the spatial extent of the field.
	Bounds() geom.Rect
	// ValueRange returns the interval covering every sample value.
	ValueRange() geom.Interval
	// Locate returns the id of a cell containing p, if any.
	Locate(p geom.Point) (CellID, bool)
}

// Mutable is a Field whose sample values can change after construction —
// the live-field contract behind incremental index maintenance. Samples are
// addressed by the model's own index: row-major vertex index for the DEM,
// point index for the TIN. Geometry (vertex positions, the subdivision) is
// immutable; only the measured values move, which is what keeps every cell's
// encoded record the same length under updates.
type Mutable interface {
	Field
	// NumSamples returns the number of sample points.
	NumSamples() int
	// SampleValue returns the current value at sample i.
	SampleValue(i int) float64
	// SetSample overwrites the value at sample i, keeping ValueRange exact.
	SetSample(i int, v float64) error
	// IncidentCells appends to dst the ids of every cell that has sample i
	// as a vertex — the cells whose intervals an update to i can move.
	IncidentCells(i int, dst []CellID) []CellID
}

// ValueAt evaluates the field at p by locating the containing cell and
// applying linear interpolation on its sample points — the conventional
// query F(v') of §2.2.1.
func ValueAt(f Field, p geom.Point) (float64, bool) {
	id, ok := f.Locate(p)
	if !ok {
		return 0, false
	}
	var c Cell
	f.Cell(id, &c)
	return Interpolate(&c, p)
}

// Interpolate evaluates the cell's linear interpolant at p.
func Interpolate(c *Cell, p geom.Point) (float64, bool) {
	switch len(c.Vertices) {
	case 3:
		return band.TriangleValue(c.Vertices[0], c.Vertices[1], c.Vertices[2],
			c.Values[0], c.Values[1], c.Values[2], p)
	case 4:
		return band.QuadValue(c.Bounds(), c.Values[0], c.Values[1], c.Values[2], c.Values[3], p)
	default:
		return 0, false
	}
}

// Band returns the exact answer region of the cell for the value band
// [lo, hi]: the set of points where the interpolated value falls inside.
func Band(c *Cell, lo, hi float64) []geom.Polygon {
	switch len(c.Vertices) {
	case 3:
		if pg := band.TriangleBand(c.Vertices[0], c.Vertices[1], c.Vertices[2],
			c.Values[0], c.Values[1], c.Values[2], lo, hi); pg != nil {
			return []geom.Polygon{pg}
		}
		return nil
	case 4:
		return band.QuadBand(c.Bounds(), c.Values[0], c.Values[1], c.Values[2], c.Values[3], lo, hi)
	default:
		return nil
	}
}

// Isolines returns the segments inside the cell where the interpolated value
// equals w — the answer geometry of an exact value query (Qinterval = 0),
// whose answer region has measure zero.
func Isolines(c *Cell, w float64) [][2]geom.Point {
	segFrom := func(pts []geom.Point) ([2]geom.Point, bool) {
		if len(pts) != 2 {
			return [2]geom.Point{}, false
		}
		return [2]geom.Point{pts[0], pts[1]}, true
	}
	switch len(c.Vertices) {
	case 3:
		if s, ok := segFrom(band.Isoline(c.Vertices[0], c.Vertices[1], c.Vertices[2],
			c.Values[0], c.Values[1], c.Values[2], w)); ok {
			return [][2]geom.Point{s}
		}
		return nil
	case 4:
		r := c.Bounds()
		p0 := r.Min
		p1 := geom.Pt(r.Max.X, r.Min.Y)
		p2 := r.Max
		p3 := geom.Pt(r.Min.X, r.Max.Y)
		var out [][2]geom.Point
		if s, ok := segFrom(band.Isoline(p0, p1, p2, c.Values[0], c.Values[1], c.Values[2], w)); ok {
			out = append(out, s)
		}
		if s, ok := segFrom(band.Isoline(p0, p2, p3, c.Values[0], c.Values[2], c.Values[3], w)); ok {
			out = append(out, s)
		}
		return out
	default:
		return nil
	}
}

// ValueRangeOf computes the value range of any Field by scanning its cells;
// models with a cheaper way to answer should implement ValueRange directly.
func ValueRangeOf(f Field) geom.Interval {
	iv := geom.EmptyInterval()
	var c Cell
	for id := 0; id < f.NumCells(); id++ {
		f.Cell(CellID(id), &c)
		iv = iv.Union(c.Interval())
	}
	return iv
}
