package field

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fielddb/internal/geom"
)

func quadCell(id CellID, r geom.Rect, v0, v1, v2, v3 float64) *Cell {
	return &Cell{
		ID: id,
		Vertices: []geom.Point{
			r.Min, geom.Pt(r.Max.X, r.Min.Y), r.Max, geom.Pt(r.Min.X, r.Max.Y),
		},
		Values: []float64{v0, v1, v2, v3},
	}
}

func triCell(id CellID, p0, p1, p2 geom.Point, w0, w1, w2 float64) *Cell {
	return &Cell{
		ID:       id,
		Vertices: []geom.Point{p0, p1, p2},
		Values:   []float64{w0, w1, w2},
	}
}

func TestCellInterval(t *testing.T) {
	c := quadCell(0, geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}, 3, 7, 1, 5)
	iv := c.Interval()
	if iv.Lo != 1 || iv.Hi != 7 {
		t.Fatalf("Interval = %v", iv)
	}
}

func TestCellCenterBounds(t *testing.T) {
	c := triCell(0, geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(0, 2), 1, 2, 3)
	ctr := c.Center()
	if math.Abs(ctr.X-2.0/3) > 1e-12 || math.Abs(ctr.Y-2.0/3) > 1e-12 {
		t.Fatalf("Center = %v", ctr)
	}
	b := c.Bounds()
	if b.Min != geom.Pt(0, 0) || b.Max != geom.Pt(2, 2) {
		t.Fatalf("Bounds = %v", b)
	}
}

func TestCellValidate(t *testing.T) {
	good := triCell(0, geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1), 1, 2, 3)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid cell rejected: %v", err)
	}
	bad := &Cell{ID: 1, Vertices: []geom.Point{{X: 0, Y: 0}}, Values: []float64{1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("1-vertex cell accepted")
	}
	mismatch := &Cell{ID: 2, Vertices: []geom.Point{{}, {}, {}}, Values: []float64{1}}
	if err := mismatch.Validate(); err == nil {
		t.Fatal("vertex/value mismatch accepted")
	}
	nan := triCell(3, geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1), math.NaN(), 2, 3)
	if err := nan.Validate(); err == nil {
		t.Fatal("NaN value accepted")
	}
}

func TestInterpolateTriangleAndQuad(t *testing.T) {
	tri := triCell(0, geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1), 0, 1, 2)
	got, ok := Interpolate(tri, geom.Pt(0.25, 0.25))
	if !ok || math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("tri interp = %g ok=%v, want 0.75", got, ok)
	}
	quad := quadCell(1, geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}, 0, 1, 2, 1)
	got, ok = Interpolate(quad, geom.Pt(0.5, 0.5))
	if !ok || math.Abs(got-1) > 1e-12 {
		t.Fatalf("quad interp = %g ok=%v, want 1", got, ok)
	}
	bad := &Cell{Vertices: []geom.Point{{}, {}}, Values: []float64{0, 0}}
	if _, ok := Interpolate(bad, geom.Pt(0, 0)); ok {
		t.Fatal("2-vertex cell interpolated")
	}
}

func TestBandDispatch(t *testing.T) {
	tri := triCell(0, geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1), 0, 1, 2)
	pgs := Band(tri, -1, 3)
	if len(pgs) != 1 || math.Abs(pgs[0].Area()-0.5) > 1e-9 {
		t.Fatalf("tri band = %v", pgs)
	}
	if pgs := Band(tri, 10, 20); pgs != nil {
		t.Fatalf("out-of-range tri band = %v", pgs)
	}
	quad := quadCell(1, geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}, 0, 1, 2, 1)
	pgs = Band(quad, -1, 3)
	total := 0.0
	for _, pg := range pgs {
		total += pg.Area()
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("quad band total area = %g", total)
	}
	bad := &Cell{Vertices: []geom.Point{{}, {}}, Values: []float64{0, 0}}
	if Band(bad, 0, 1) != nil {
		t.Fatal("2-vertex band produced polygons")
	}
}

func TestCodecRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		k := 3 + rng.Intn(2)
		c := &Cell{ID: CellID(rng.Uint32())}
		for i := 0; i < k; i++ {
			c.Vertices = append(c.Vertices, geom.Pt(rng.NormFloat64()*100, rng.NormFloat64()*100))
			c.Values = append(c.Values, rng.NormFloat64()*50)
		}
		rec := AppendCell(nil, c)
		if len(rec) != EncodedSize(k) {
			t.Fatalf("encoded size %d, want %d", len(rec), EncodedSize(k))
		}
		var back Cell
		if err := DecodeCell(rec, &back); err != nil {
			t.Fatal(err)
		}
		if back.ID != c.ID || len(back.Vertices) != k {
			t.Fatalf("roundtrip header mismatch")
		}
		for i := 0; i < k; i++ {
			if back.Vertices[i] != c.Vertices[i] || back.Values[i] != c.Values[i] {
				t.Fatalf("roundtrip vertex %d mismatch", i)
			}
		}
	}
}

func TestCodecReusesBuffers(t *testing.T) {
	c := triCell(7, geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1), 1, 2, 3)
	rec := AppendCell(nil, c)
	dst := Cell{
		Vertices: make([]geom.Point, 0, 8),
		Values:   make([]float64, 0, 8),
	}
	vcap := cap(dst.Vertices)
	if err := DecodeCell(rec, &dst); err != nil {
		t.Fatal(err)
	}
	if cap(dst.Vertices) != vcap {
		t.Fatal("DecodeCell reallocated vertices despite capacity")
	}
}

func TestCodecErrors(t *testing.T) {
	if err := DecodeCell([]byte{1, 2}, &Cell{}); err == nil {
		t.Fatal("short record accepted")
	}
	c := triCell(0, geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1), 1, 2, 3)
	rec := AppendCell(nil, c)
	rec[4] = 9 // bogus vertex count
	if err := DecodeCell(rec, &Cell{}); err == nil {
		t.Fatal("bogus vertex count accepted")
	}
	rec[4] = 4 // count says 4, payload has 3
	if err := DecodeCell(rec, &Cell{}); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestCodecQuickProperty(t *testing.T) {
	f := func(id uint32, xs [4]float64, ys [4]float64, ws [4]float64, quad bool) bool {
		k := 3
		if quad {
			k = 4
		}
		c := &Cell{ID: CellID(id)}
		for i := 0; i < k; i++ {
			if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) || math.IsNaN(ws[i]) {
				return true
			}
			c.Vertices = append(c.Vertices, geom.Pt(xs[i], ys[i]))
			c.Values = append(c.Values, ws[i])
		}
		var back Cell
		if err := DecodeCell(AppendCell(nil, c), &back); err != nil {
			return false
		}
		if back.ID != c.ID {
			return false
		}
		for i := 0; i < k; i++ {
			if back.Vertices[i] != c.Vertices[i] || back.Values[i] != c.Values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIsolines(t *testing.T) {
	// Triangle with w = x: level 0.5 cuts a vertical segment.
	tri := triCell(0, geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1), 0, 1, 0)
	segs := Isolines(tri, 0.5)
	if len(segs) != 1 {
		t.Fatalf("tri isolines = %v", segs)
	}
	for _, p := range []geom.Point{segs[0][0], segs[0][1]} {
		if math.Abs(p.X-0.5) > 1e-9 {
			t.Fatalf("isoline point %v not on x = 0.5", p)
		}
	}
	// Quad with w = x: the level cuts both half-triangles.
	quad := quadCell(1, geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}, 0, 1, 1, 0)
	segs = Isolines(quad, 0.5)
	total := 0.0
	for _, s := range segs {
		total += s[0].Dist(s[1])
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("quad isoline length = %g, want 1", total)
	}
	// Out-of-range level: nothing.
	if segs := Isolines(quad, 5); len(segs) != 0 {
		t.Fatalf("phantom isolines %v", segs)
	}
	// Unsupported cell shape.
	bad := &Cell{Vertices: []geom.Point{{}, {}}, Values: []float64{0, 0}}
	if Isolines(bad, 0) != nil {
		t.Fatal("2-vertex isolines")
	}
}

func TestValueRangeOfGeneric(t *testing.T) {
	g := &gridStub{nx: 4, ny: 4, fn: func(x, y float64) float64 { return x - y }}
	vr := ValueRangeOf(g)
	if vr.Lo != -4 || vr.Hi != 4 {
		t.Fatalf("ValueRangeOf = %v", vr)
	}
	if b := g.Bounds(); b.Max != geom.Pt(4, 4) {
		t.Fatalf("stub bounds %v", b)
	}
}

func TestVectorFieldBounds(t *testing.T) {
	u := &gridStub{nx: 3, ny: 3, fn: func(x, y float64) float64 { return x }}
	v := &gridStub{nx: 3, ny: 3, fn: func(x, y float64) float64 { return y }}
	vf, err := NewVectorField(u, v)
	if err != nil {
		t.Fatal(err)
	}
	if vf.Bounds() != u.Bounds() {
		t.Fatalf("Bounds = %v", vf.Bounds())
	}
}
