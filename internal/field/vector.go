package field

import (
	"fmt"
	"math"

	"fielddb/internal/geom"
)

// VectorField is the paper's future-work extension (§5): a field whose
// value is a vector (e.g. wind: direction and magnitude), represented as k
// scalar component fields over one shared cell subdivision.
//
// Component-wise value queries compose with core.ConjunctiveQuery; for
// magnitude queries, which are not linear in the components, VectorField
// offers conservative per-cell magnitude bounds suitable for a
// filter-and-refine pipeline: the bounds never exclude a true answer, so an
// index over them yields candidate cells that a refinement step (numeric
// evaluation inside the cell) can finish.
type VectorField struct {
	components []Field
}

// NewVectorField bundles component fields. All components must share the
// same subdivision (cell count and geometry).
func NewVectorField(components ...Field) (*VectorField, error) {
	if len(components) < 2 {
		return nil, fmt.Errorf("field: a vector field needs >= 2 components, got %d", len(components))
	}
	n := components[0].NumCells()
	b := components[0].Bounds()
	for i, c := range components[1:] {
		if c.NumCells() != n {
			return nil, fmt.Errorf("field: component %d has %d cells, want %d", i+1, c.NumCells(), n)
		}
		if c.Bounds() != b {
			return nil, fmt.Errorf("field: component %d bounds %v differ from %v", i+1, c.Bounds(), b)
		}
	}
	return &VectorField{components: components}, nil
}

// Dims returns the number of vector components.
func (v *VectorField) Dims() int { return len(v.components) }

// Component returns the i-th scalar component field.
func (v *VectorField) Component(i int) Field { return v.components[i] }

// NumCells returns the shared cell count.
func (v *VectorField) NumCells() int { return v.components[0].NumCells() }

// Bounds returns the shared spatial extent.
func (v *VectorField) Bounds() geom.Rect { return v.components[0].Bounds() }

// At evaluates every component at p.
func (v *VectorField) At(p geom.Point) ([]float64, bool) {
	out := make([]float64, len(v.components))
	for i, c := range v.components {
		w, ok := ValueAt(c, p)
		if !ok {
			return nil, false
		}
		out[i] = w
	}
	return out, true
}

// MagnitudeAt evaluates the Euclidean norm of the vector value at p.
func (v *VectorField) MagnitudeAt(p geom.Point) (float64, bool) {
	ws, ok := v.At(p)
	if !ok {
		return 0, false
	}
	sum := 0.0
	for _, w := range ws {
		sum += w * w
	}
	return math.Sqrt(sum), true
}

// MagnitudeBounds returns a conservative interval covering the vector
// magnitude everywhere inside cell id: per-component interval bounds are
// combined by interval arithmetic on Σ wᵢ². The interval may overestimate
// (the componentwise extremes need not be attained at one point) but never
// excludes a value actually attained — the invariant a filter step needs.
func (v *VectorField) MagnitudeBounds(id CellID) geom.Interval {
	var lo2, hi2 float64
	var c Cell
	for _, comp := range v.components {
		comp.Cell(id, &c)
		iv := c.Interval()
		// Bounds of w² over [iv.Lo, iv.Hi].
		l2 := iv.Lo * iv.Lo
		h2 := iv.Hi * iv.Hi
		mn, mx := math.Min(l2, h2), math.Max(l2, h2)
		if iv.Lo <= 0 && 0 <= iv.Hi {
			mn = 0
		}
		lo2 += mn
		hi2 += mx
	}
	return geom.Interval{Lo: math.Sqrt(lo2), Hi: math.Sqrt(hi2)}
}
