package field

import (
	"encoding/binary"
	"fmt"
	"math"

	"fielddb/internal/geom"
)

// Cell record layout (little endian):
//
//	[0:4)  cell id
//	[4:5)  vertex count k (3 or 4)
//	then k × (x float64, y float64, w float64).
//
// A 4-vertex DEM cell is 101 bytes, so a 4 KiB page holds ~38 cells; the
// 512×512 terrain of Fig 8a occupies ~6,900 pages, matching the paper's
// "large field database" setting.

// EncodedSize returns the record size for a cell with k vertices.
func EncodedSize(k int) int { return 5 + 24*k }

// AppendCell serializes c onto dst and returns the extended slice.
func AppendCell(dst []byte, c *Cell) []byte {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(c.ID))
	hdr[4] = byte(len(c.Vertices))
	dst = append(dst, hdr[:]...)
	var b [8]byte
	for i, p := range c.Vertices {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(p.X))
		dst = append(dst, b[:]...)
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(p.Y))
		dst = append(dst, b[:]...)
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(c.Values[i]))
		dst = append(dst, b[:]...)
	}
	return dst
}

// CellIDFromRecord extracts the stored cell id of an encoded cell without
// materializing it — the tiled planner's gather step uses it to map a record
// scanned out of a tile-local heap back to a position key.
func CellIDFromRecord(rec []byte) (CellID, error) {
	if len(rec) < 5 {
		return 0, fmt.Errorf("field: cell record too short: %d bytes", len(rec))
	}
	return CellID(binary.LittleEndian.Uint32(rec[0:4])), nil
}

// CellIntervalFromRecord extracts the value interval of an encoded cell —
// the same min/max Cell.Interval computes — without materializing vertices.
// The filter-only passes of the query pipeline use it to test a candidate
// record against the query interval and decode the full cell only on a
// match; a DEM workload at paper selectivities discards most fetched cells
// here, so skipping the two coordinate floats per vertex (and the slice
// bookkeeping of DecodeCell) on the discard path is the common case.
func CellIntervalFromRecord(rec []byte) (geom.Interval, error) {
	if len(rec) < 5 {
		return geom.Interval{}, fmt.Errorf("field: cell record too short: %d bytes", len(rec))
	}
	k := int(rec[4])
	if k != 3 && k != 4 {
		return geom.Interval{}, fmt.Errorf("field: cell record has vertex count %d", k)
	}
	if want := EncodedSize(k); len(rec) != want {
		return geom.Interval{}, fmt.Errorf("field: cell record is %d bytes, want %d", len(rec), want)
	}
	iv := geom.EmptyInterval()
	off := 5 + 16 // first vertex's value
	for i := 0; i < k; i++ {
		w := math.Float64frombits(binary.LittleEndian.Uint64(rec[off:]))
		if w < iv.Lo {
			iv.Lo = w
		}
		if w > iv.Hi {
			iv.Hi = w
		}
		off += 24
	}
	return iv, nil
}

// FilterIntervals tests the packed interval columns lo/hi — one sidecar
// page's worth at a time — against the closed query interval [qlo, qhi] and
// appends the positions base+i of the intersecting entries to out. The test
// is exactly geom.Interval.Intersects on the same operands (cell intervals
// are never empty), so a sidecar filter selects bit-for-bit the same cells
// as testing CellIntervalFromRecord per record.
//
// The loop is branch-reduced: every iteration writes the candidate position
// unconditionally and advances the output cursor by a comparison-derived
// 0/1, so there is no taken-branch or memmove cost on the (common) discard
// path.
func FilterIntervals(out []int32, base int32, lo, hi []float64, qlo, qhi float64) []int32 {
	j := len(out)
	need := j + len(lo)
	if cap(out) < need {
		grown := make([]int32, j, need+need/2)
		copy(grown, out)
		out = grown
	}
	out = out[:need]
	for i, l := range lo {
		out[j] = base + int32(i)
		inc := 0
		if hi[i] >= qlo && l <= qhi {
			inc = 1
		}
		j += inc
	}
	return out[:j]
}

// FilterIntervalsMulti is FilterIntervals for a batch of query intervals:
// one pass over the packed columns evaluates every query's predicate per
// entry, appending the surviving positions to that query's own out slice.
// Per query the selection is bit-for-bit what FilterIntervals would produce
// on the same operands, so a shared sidecar scan can serve a whole batch
// without changing any member's answer. out must have at least len(qlo)
// slices; a query whose bounds are NaN (the batch executor's dead-member
// marker) selects nothing.
func FilterIntervalsMulti(out [][]int32, base int32, lo, hi []float64, qlo, qhi []float64) {
	for i, l := range lo {
		h := hi[i]
		p := base + int32(i)
		for k, ql := range qlo {
			if h >= ql && l <= qhi[k] {
				out[k] = append(out[k], p)
			}
		}
	}
}

// DecodeCell parses a record produced by AppendCell into dst, reusing its
// slices when capacities allow.
func DecodeCell(rec []byte, dst *Cell) error {
	if len(rec) < 5 {
		return fmt.Errorf("field: cell record too short: %d bytes", len(rec))
	}
	k := int(rec[4])
	if k != 3 && k != 4 {
		return fmt.Errorf("field: cell record has vertex count %d", k)
	}
	if want := EncodedSize(k); len(rec) != want {
		return fmt.Errorf("field: cell record is %d bytes, want %d", len(rec), want)
	}
	dst.ID = CellID(binary.LittleEndian.Uint32(rec[0:4]))
	if cap(dst.Vertices) < k {
		dst.Vertices = make([]geom.Point, k)
	}
	dst.Vertices = dst.Vertices[:k]
	if cap(dst.Values) < k {
		dst.Values = make([]float64, k)
	}
	dst.Values = dst.Values[:k]
	off := 5
	for i := 0; i < k; i++ {
		dst.Vertices[i].X = math.Float64frombits(binary.LittleEndian.Uint64(rec[off:]))
		dst.Vertices[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(rec[off+8:]))
		dst.Values[i] = math.Float64frombits(binary.LittleEndian.Uint64(rec[off+16:]))
		off += 24
	}
	return nil
}
