package field

import (
	"math"
	"math/rand"
	"testing"

	"fielddb/internal/geom"
)

// TestFilterIntervalsMatchesIntersects checks the branch-reduced column
// filter selects bit-for-bit the positions geom.Interval.Intersects would.
func TestFilterIntervalsMatchesIntersects(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 257
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i := range lo {
		lo[i] = rng.Float64() * 100
		hi[i] = lo[i] + rng.Float64()*10
	}
	for _, q := range []geom.Interval{
		{Lo: 20, Hi: 40}, {Lo: 50, Hi: 50}, {Lo: -10, Hi: -5}, {Lo: 0, Hi: 200},
	} {
		got := FilterIntervals(nil, 1000, lo, hi, q.Lo, q.Hi)
		var want []int32
		for i := range lo {
			if (geom.Interval{Lo: lo[i], Hi: hi[i]}).Intersects(q) {
				want = append(want, 1000+int32(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("q=%v: %d selected, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("q=%v: position %d = %d, want %d", q, i, got[i], want[i])
			}
		}
	}
}

// TestFilterIntervalsMulti checks the batched filter: per query the
// selection equals a FilterIntervals pass on the same operands, and NaN
// bounds (the batch executor's dead-member marker) select nothing.
func TestFilterIntervalsMulti(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 100
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i := range lo {
		lo[i] = rng.Float64() * 100
		hi[i] = lo[i] + rng.Float64()*10
	}
	qlo := []float64{20, 50, math.NaN(), -10, 0}
	qhi := []float64{40, 50, math.NaN(), -5, 200}
	out := make([][]int32, len(qlo))
	// Two chunks with different bases, as a paged scan would deliver.
	FilterIntervalsMulti(out, 0, lo[:60], hi[:60], qlo, qhi)
	FilterIntervalsMulti(out, 60, lo[60:], hi[60:], qlo, qhi)
	for k := range qlo {
		var want []int32
		if !math.IsNaN(qlo[k]) {
			want = FilterIntervals(nil, 0, lo, hi, qlo[k], qhi[k])
		}
		if len(out[k]) != len(want) {
			t.Fatalf("query %d: %d selected, want %d", k, len(out[k]), len(want))
		}
		for i := range want {
			if out[k][i] != want[i] {
				t.Fatalf("query %d: position %d = %d, want %d", k, i, out[k][i], want[i])
			}
		}
	}
	if len(out[2]) != 0 {
		t.Fatalf("NaN-bounded query selected %d positions", len(out[2]))
	}
}
