package intervaltree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fielddb/internal/geom"
)

func TestEmptyTree(t *testing.T) {
	tr := Build(nil)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	count := 0
	tr.Query(geom.Interval{Lo: -1e9, Hi: 1e9}, func(Item) bool { count++; return true })
	if count != 0 {
		t.Fatal("empty tree returned items")
	}
}

func TestQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n = 3000
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		lo := rng.Float64() * 100
		items[i] = Item{Interval: geom.Interval{Lo: lo, Hi: lo + rng.Float64()*5}, Data: uint64(i)}
	}
	tr := Build(items)
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for q := 0; q < 200; q++ {
		lo := rng.Float64() * 100
		query := geom.Interval{Lo: lo, Hi: lo + rng.Float64()*10}
		want := map[uint64]bool{}
		for _, it := range items {
			if it.Interval.Intersects(query) {
				want[it.Data] = true
			}
		}
		got := map[uint64]bool{}
		tr.Query(query, func(it Item) bool { got[it.Data] = true; return true })
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d want %d", query, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("query %v: missing %d", query, k)
			}
		}
	}
}

func TestStab(t *testing.T) {
	items := []Item{
		{Interval: geom.Interval{Lo: 0, Hi: 10}, Data: 1},
		{Interval: geom.Interval{Lo: 5, Hi: 15}, Data: 2},
		{Interval: geom.Interval{Lo: 20, Hi: 30}, Data: 3},
	}
	tr := Build(items)
	var got []uint64
	tr.Stab(7, func(it Item) bool { got = append(got, it.Data); return true })
	if len(got) != 2 {
		t.Fatalf("Stab(7) = %v", got)
	}
	got = nil
	tr.Stab(25, func(it Item) bool { got = append(got, it.Data); return true })
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("Stab(25) = %v", got)
	}
	got = nil
	tr.Stab(17, func(it Item) bool { got = append(got, it.Data); return true })
	if len(got) != 0 {
		t.Fatalf("Stab(17) = %v", got)
	}
	// Boundary values included (closed intervals).
	got = nil
	tr.Stab(10, func(it Item) bool { got = append(got, it.Data); return true })
	if len(got) != 2 {
		t.Fatalf("Stab(10) = %v, want both [0,10] and [5,15]", got)
	}
}

func TestEarlyStop(t *testing.T) {
	var items []Item
	for i := 0; i < 100; i++ {
		items = append(items, Item{Interval: geom.Interval{Lo: 0, Hi: 1}, Data: uint64(i)})
	}
	tr := Build(items)
	count := 0
	tr.Query(geom.Interval{Lo: 0, Hi: 1}, func(Item) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestEmptyQueryInterval(t *testing.T) {
	tr := Build([]Item{{Interval: geom.Interval{Lo: 0, Hi: 1}, Data: 1}})
	count := 0
	tr.Query(geom.EmptyInterval(), func(Item) bool { count++; return true })
	if count != 0 {
		t.Fatal("empty query returned items")
	}
}

func TestDegenerateIdenticalIntervals(t *testing.T) {
	// All intervals identical — stresses the degenerate split guard.
	var items []Item
	for i := 0; i < 500; i++ {
		items = append(items, Item{Interval: geom.Interval{Lo: 5, Hi: 5}, Data: uint64(i)})
	}
	tr := Build(items)
	count := 0
	tr.Stab(5, func(Item) bool { count++; return true })
	if count != 500 {
		t.Fatalf("found %d of 500 identical intervals", count)
	}
	count = 0
	tr.Stab(4.999, func(Item) bool { count++; return true })
	if count != 0 {
		t.Fatal("stab outside found items")
	}
}

func TestQuickProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		items := make([]Item, n)
		for i := range items {
			lo := rng.Float64() * 10
			items[i] = Item{Interval: geom.Interval{Lo: lo, Hi: lo + rng.Float64()*2}, Data: uint64(i)}
		}
		tr := Build(items)
		for q := 0; q < 5; q++ {
			lo := rng.Float64() * 10
			query := geom.Interval{Lo: lo, Hi: lo + rng.Float64()*3}
			want := 0
			for _, it := range items {
				if it.Interval.Intersects(query) {
					want++
				}
			}
			got := 0
			tr.Query(query, func(Item) bool { got++; return true })
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := make([]Item, 100000)
	for i := range items {
		lo := rng.Float64() * 1e6
		items[i] = Item{Interval: geom.Interval{Lo: lo, Hi: lo + 10}, Data: uint64(i)}
	}
	tr := Build(items)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lo := rng.Float64() * 1e6
		tr.Query(geom.Interval{Lo: lo, Hi: lo + 100}, func(Item) bool { return true })
	}
}
