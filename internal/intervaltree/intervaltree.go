// Package intervaltree implements a static centered interval tree
// (Edelsbrunner 1980), the main-memory structure the paper's related work
// (§2.3) used for isosurface/isoline extraction. It answers "find all
// intervals intersecting a query interval" in O(log n + k).
//
// The paper dismisses it for large field databases because it is a
// main-memory method; fielddb includes it both as a related-work baseline
// and as the in-memory filter used to cross-check the R*-tree results in
// tests.
package intervaltree

import (
	"sort"

	"fielddb/internal/geom"
)

// Item is an interval with an opaque payload.
type Item struct {
	Interval geom.Interval
	Data     uint64
}

type node struct {
	center      float64
	left, right *node
	// Intervals containing center, sorted two ways for one-sided scans.
	byLo []Item // ascending Lo
	byHi []Item // descending Hi
}

// Tree is an immutable interval tree.
type Tree struct {
	root *node
	size int
}

// Build constructs the tree from the given items in O(n log n).
func Build(items []Item) *Tree {
	own := make([]Item, len(items))
	copy(own, items)
	return &Tree{root: build(own), size: len(items)}
}

// Len returns the number of stored intervals.
func (t *Tree) Len() int { return t.size }

func build(items []Item) *node {
	if len(items) == 0 {
		return nil
	}
	// Median of endpoint values keeps the tree balanced.
	endpoints := make([]float64, 0, 2*len(items))
	for _, it := range items {
		endpoints = append(endpoints, it.Interval.Lo, it.Interval.Hi)
	}
	sort.Float64s(endpoints)
	center := endpoints[len(endpoints)/2]

	var here, left, right []Item
	for _, it := range items {
		switch {
		case it.Interval.Hi < center:
			left = append(left, it)
		case it.Interval.Lo > center:
			right = append(right, it)
		default:
			here = append(here, it)
		}
	}
	// Degenerate guard: if every interval lands on one side (possible with
	// duplicate endpoints), split arbitrarily to guarantee progress.
	if len(here) == 0 && (len(left) == 0 || len(right) == 0) {
		all := items
		sort.Slice(all, func(i, j int) bool { return all[i].Interval.Lo < all[j].Interval.Lo })
		mid := len(all) / 2
		here = all[mid : mid+1]
		left = all[:mid]
		right = all[mid+1:]
		center = all[mid].Interval.Lo
	}

	n := &node{center: center}
	n.byLo = make([]Item, len(here))
	copy(n.byLo, here)
	sort.Slice(n.byLo, func(i, j int) bool { return n.byLo[i].Interval.Lo < n.byLo[j].Interval.Lo })
	n.byHi = make([]Item, len(here))
	copy(n.byHi, here)
	sort.Slice(n.byHi, func(i, j int) bool { return n.byHi[i].Interval.Hi > n.byHi[j].Interval.Hi })
	n.left = build(left)
	n.right = build(right)
	return n
}

// Query visits every stored item whose interval intersects q. Returning
// false from fn stops the traversal.
func (t *Tree) Query(q geom.Interval, fn func(Item) bool) {
	if q.IsEmpty() {
		return
	}
	query(t.root, q, fn)
}

func query(n *node, q geom.Interval, fn func(Item) bool) bool {
	if n == nil {
		return true
	}
	switch {
	case q.Hi < n.center:
		// Only items with Lo <= q.Hi can intersect; byLo is ascending.
		for _, it := range n.byLo {
			if it.Interval.Lo > q.Hi {
				break
			}
			if !fn(it) {
				return false
			}
		}
		return query(n.left, q, fn)
	case q.Lo > n.center:
		// Only items with Hi >= q.Lo can intersect; byHi is descending.
		for _, it := range n.byHi {
			if it.Interval.Hi < q.Lo {
				break
			}
			if !fn(it) {
				return false
			}
		}
		return query(n.right, q, fn)
	default:
		// center is inside q: every item here intersects.
		for _, it := range n.byLo {
			if !fn(it) {
				return false
			}
		}
		if !query(n.left, q, fn) {
			return false
		}
		return query(n.right, q, fn)
	}
}

// Stab visits every stored item whose interval contains the value w.
func (t *Tree) Stab(w float64, fn func(Item) bool) {
	t.Query(geom.Interval{Lo: w, Hi: w}, fn)
}
