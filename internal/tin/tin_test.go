package tin

import (
	"math"
	"math/rand"
	"testing"

	"fielddb/internal/field"
	"fielddb/internal/geom"
)

func TestDelaunayErrors(t *testing.T) {
	if _, err := Delaunay([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}); err == nil {
		t.Fatal("2 points accepted")
	}
	if _, err := Delaunay([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 0}}); err == nil {
		t.Fatal("duplicate points accepted")
	}
	if _, err := Delaunay([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}}); err == nil {
		t.Fatal("collinear points accepted")
	}
}

func TestDelaunaySquare(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
	tris, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 2 {
		t.Fatalf("square triangulated into %d triangles", len(tris))
	}
	total := 0.0
	for _, tr := range tris {
		total += geom.Polygon{pts[tr[0]], pts[tr[1]], pts[tr[2]]}.Area()
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("triangulated area = %g, want 1", total)
	}
}

func delaunayCircumcircleOK(t *testing.T, pts []geom.Point, tris []Triangle) {
	t.Helper()
	// Delaunay property: no point lies strictly inside any triangle's
	// circumcircle.
	for _, tr := range tris {
		a, b, c := pts[tr[0]], pts[tr[1]], pts[tr[2]]
		d := 2 * (a.X*(b.Y-c.Y) + b.X*(c.Y-a.Y) + c.X*(a.Y-b.Y))
		if math.Abs(d) < 1e-12 {
			t.Fatal("degenerate output triangle")
		}
		a2 := a.X*a.X + a.Y*a.Y
		b2 := b.X*b.X + b.Y*b.Y
		c2 := c.X*c.X + c.Y*c.Y
		ux := (a2*(b.Y-c.Y) + b2*(c.Y-a.Y) + c2*(a.Y-b.Y)) / d
		uy := (a2*(c.X-b.X) + b2*(a.X-c.X) + c2*(b.X-a.X)) / d
		r2 := (a.X-ux)*(a.X-ux) + (a.Y-uy)*(a.Y-uy)
		for pi, p := range pts {
			if int32(pi) == tr[0] || int32(pi) == tr[1] || int32(pi) == tr[2] {
				continue
			}
			d2 := (p.X-ux)*(p.X-ux) + (p.Y-uy)*(p.Y-uy)
			if d2 < r2*(1-1e-9) {
				t.Fatalf("point %v strictly inside circumcircle of %v", p, tr)
			}
		}
	}
}

func TestDelaunayRandomProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 5; trial++ {
		n := 50 + rng.Intn(100)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		tris, err := Delaunay(pts)
		if err != nil {
			t.Fatal(err)
		}
		delaunayCircumcircleOK(t, pts, tris)
		// Area of the triangulation equals the area of the convex hull:
		// at minimum it must cover the bounding box's interior points, so
		// compare against a Monte-Carlo hull-area estimate via coverage.
		total := 0.0
		for _, tr := range tris {
			total += geom.Polygon{pts[tr[0]], pts[tr[1]], pts[tr[2]]}.Area()
		}
		if total <= 0 {
			t.Fatal("zero triangulated area")
		}
		// Euler check for planar triangulation of a point set:
		// T = 2n - 2 - h where h = hull points; so T <= 2n - 5 for h >= 3.
		if len(tris) > 2*n-5 {
			t.Fatalf("too many triangles: %d for %d points", len(tris), n)
		}
	}
}

func buildTestTIN(t *testing.T, n int, f func(x, y float64) float64) *TIN {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	pts := make([]geom.Point, n)
	vals := make([]float64, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*50, rng.Float64()*50)
		vals[i] = f(pts[i].X, pts[i].Y)
	}
	tin, err := FromPoints(pts, vals)
	if err != nil {
		t.Fatal(err)
	}
	return tin
}

func TestTINBasics(t *testing.T) {
	tin := buildTestTIN(t, 200, func(x, y float64) float64 { return x + y })
	if tin.NumPoints() != 200 {
		t.Fatalf("NumPoints = %d", tin.NumPoints())
	}
	if tin.NumCells() == 0 {
		t.Fatal("no cells")
	}
	var c field.Cell
	tin.Cell(0, &c)
	if len(c.Vertices) != 3 || len(c.Values) != 3 {
		t.Fatalf("cell shape %d/%d", len(c.Vertices), len(c.Values))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	vr := tin.ValueRange()
	if vr.IsEmpty() || vr.Lo < 0 || vr.Hi > 100 {
		t.Fatalf("ValueRange = %v", vr)
	}
}

func TestTINNewValidation(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}}
	if _, err := New(pts, []float64{1, 2}, []Triangle{{0, 1, 2}}); err == nil {
		t.Fatal("value count mismatch accepted")
	}
	if _, err := New(pts, []float64{1, 2, 3}, nil); err == nil {
		t.Fatal("no triangles accepted")
	}
	if _, err := New(pts, []float64{1, 2, 3}, []Triangle{{0, 1, 7}}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if _, err := New(pts, []float64{1, math.NaN(), 3}, []Triangle{{0, 1, 2}}); err == nil {
		t.Fatal("NaN value accepted")
	}
}

func TestTINLocateAndValueAt(t *testing.T) {
	tin := buildTestTIN(t, 400, func(x, y float64) float64 { return 2*x - y })
	rng := rand.New(rand.NewSource(8))
	located := 0
	for i := 0; i < 1000; i++ {
		p := geom.Pt(rng.Float64()*50, rng.Float64()*50)
		id, ok := tin.Locate(p)
		if !ok {
			continue // outside the convex hull
		}
		located++
		var c field.Cell
		tin.Cell(id, &c)
		w, ok := field.Interpolate(&c, p)
		if !ok {
			t.Fatalf("Locate returned cell %d not containing %v", id, p)
		}
		// Linear data is reproduced exactly inside each triangle.
		want := 2*p.X - p.Y
		if math.Abs(w-want) > 1e-9 {
			t.Fatalf("interp at %v = %g, want %g", p, w, want)
		}
	}
	if located < 900 {
		t.Fatalf("only %d/1000 points located — locator too lossy", located)
	}
	if _, ok := tin.Locate(geom.Pt(-10, -10)); ok {
		t.Fatal("outside point located")
	}
}

func TestTINCellsCoverHull(t *testing.T) {
	tin := buildTestTIN(t, 300, func(x, y float64) float64 { return x })
	// Sum of cell areas equals hull area; every cell has positive area.
	total := 0.0
	var c field.Cell
	for id := 0; id < tin.NumCells(); id++ {
		tin.Cell(field.CellID(id), &c)
		a := (geom.Polygon{c.Vertices[0], c.Vertices[1], c.Vertices[2]}).Area()
		if a <= 0 {
			t.Fatalf("cell %d has area %g", id, a)
		}
		total += a
	}
	b := tin.Bounds()
	if total > b.Area()+1e-6 {
		t.Fatalf("cells cover %g > bounds %g", total, b.Area())
	}
	if total < 0.8*b.Area() {
		t.Fatalf("cells cover only %g of bounds %g", total, b.Area())
	}
}

func BenchmarkDelaunay1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 1000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Delaunay(pts); err != nil {
			b.Fatal(err)
		}
	}
}
