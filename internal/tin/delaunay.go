// Package tin implements the triangulated-irregular-network field model: a
// set of scattered sample points triangulated into irregular cells, each
// carrying a linear interpolant over its three vertices. The paper's urban
// noise dataset (Fig 8b) is a TIN of about 9,000 triangles.
package tin

import (
	"fmt"
	"math"
	"sort"

	"fielddb/internal/geom"
)

// Triangle stores CCW vertex indices into the point set.
type Triangle [3]int32

// Delaunay triangulates the given points with the incremental
// Bowyer–Watson algorithm. It returns an error for fewer than 3 points or
// an all-collinear input. Duplicate points are rejected.
func Delaunay(points []geom.Point) ([]Triangle, error) {
	n := len(points)
	if n < 3 {
		return nil, fmt.Errorf("tin: need at least 3 points, got %d", n)
	}
	seen := make(map[geom.Point]struct{}, n)
	for _, p := range points {
		if _, dup := seen[p]; dup {
			return nil, fmt.Errorf("tin: duplicate point %v", p)
		}
		seen[p] = struct{}{}
	}

	// Super-triangle generously enclosing all points.
	b := geom.RectFromPoints(points...)
	cx, cy := b.Center().X, b.Center().Y
	span := math.Max(b.Width(), b.Height())
	if span == 0 {
		return nil, fmt.Errorf("tin: all points coincide in extent")
	}
	m := span * 64
	super := [3]geom.Point{
		geom.Pt(cx-2*m, cy-m),
		geom.Pt(cx+2*m, cy-m),
		geom.Pt(cx, cy+2*m),
	}
	// Working vertex array: real points then the 3 super vertices.
	verts := make([]geom.Point, n+3)
	copy(verts, points)
	copy(verts[n:], super[:])

	type tri struct {
		v          [3]int32
		cx, cy, r2 float64 // circumcircle
		alive      bool
	}
	circum := func(a, b, c geom.Point) (x, y, r2 float64, ok bool) {
		d := 2 * (a.X*(b.Y-c.Y) + b.X*(c.Y-a.Y) + c.X*(a.Y-b.Y))
		if math.Abs(d) < 1e-300 {
			return 0, 0, 0, false
		}
		a2 := a.X*a.X + a.Y*a.Y
		b2 := b.X*b.X + b.Y*b.Y
		c2 := c.X*c.X + c.Y*c.Y
		x = (a2*(b.Y-c.Y) + b2*(c.Y-a.Y) + c2*(a.Y-b.Y)) / d
		y = (a2*(c.X-b.X) + b2*(a.X-c.X) + c2*(b.X-a.X)) / d
		dx, dy := a.X-x, a.Y-y
		return x, y, dx*dx + dy*dy, true
	}
	mkTri := func(i, j, k int32) (tri, error) {
		a, b, c := verts[i], verts[j], verts[k]
		if geom.Orient(a, b, c) < 0 {
			j, k = k, j
			b, c = c, b
		}
		x, y, r2, ok := circum(a, b, c)
		if !ok {
			return tri{}, fmt.Errorf("tin: degenerate triangle (%d,%d,%d)", i, j, k)
		}
		return tri{v: [3]int32{i, j, k}, cx: x, cy: y, r2: r2, alive: true}, nil
	}

	first, err := mkTri(int32(n), int32(n+1), int32(n+2))
	if err != nil {
		return nil, err
	}
	tris := []tri{first}

	// Insert points in a spatially coherent order (by x then y) so cavity
	// sizes stay small; correctness does not depend on the order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := points[order[a]], points[order[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})

	type edge struct{ a, b int32 }
	for _, pi := range order {
		p := points[pi]
		// Find all triangles whose circumcircle contains p.
		edgeCount := make(map[edge]int)
		for ti := range tris {
			t := &tris[ti]
			if !t.alive {
				continue
			}
			dx, dy := p.X-t.cx, p.Y-t.cy
			if dx*dx+dy*dy <= t.r2*(1+1e-12) {
				t.alive = false
				for e := 0; e < 3; e++ {
					a, b := t.v[e], t.v[(e+1)%3]
					if a > b {
						a, b = b, a
					}
					edgeCount[edge{a, b}]++
				}
			}
		}
		// Cavity boundary = edges appearing exactly once.
		for e, cnt := range edgeCount {
			if cnt != 1 {
				continue
			}
			nt, err := mkTri(e.a, e.b, int32(pi))
			if err != nil {
				// Collinear cavity edge through p; skip — the remaining
				// boundary edges still seal the cavity.
				continue
			}
			tris = append(tris, nt)
		}
		// Periodically compact the dead triangles to keep the scan linear
		// in live triangles.
		if len(tris) > 64 && len(tris)%256 == 0 {
			live := tris[:0]
			for _, t := range tris {
				if t.alive {
					live = append(live, t)
				}
			}
			tris = live
		}
	}

	// Collect triangles not touching the super vertices.
	var out []Triangle
	for _, t := range tris {
		if !t.alive {
			continue
		}
		if t.v[0] >= int32(n) || t.v[1] >= int32(n) || t.v[2] >= int32(n) {
			continue
		}
		out = append(out, Triangle{t.v[0], t.v[1], t.v[2]})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tin: triangulation produced no triangles (collinear input?)")
	}
	return out, nil
}
