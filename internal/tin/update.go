package tin

import (
	"fmt"
	"math"

	"fielddb/internal/field"
)

// Live-update support (field.Mutable): TIN sample indices are point indices.
// The triangulation is immutable; only measured values move, so each
// triangle's encoded record keeps its length under updates.
//
// Mutation entry points are not synchronized: the caller (the core update
// engine) serializes updaters and publishes changes to readers through MVCC
// snapshots, never through this in-memory model.

// NumSamples implements field.Mutable.
func (t *TIN) NumSamples() int { return len(t.points) }

// SampleValue implements field.Mutable.
func (t *TIN) SampleValue(i int) float64 { return t.values[i] }

// SetSample implements field.Mutable, keeping ValueRange exact: growing the
// range is O(1); shrinking it (moving a sample off an extreme) rescans the
// values.
func (t *TIN) SetSample(i int, v float64) error {
	if i < 0 || i >= len(t.values) {
		return fmt.Errorf("tin: sample %d of %d", i, len(t.values))
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("tin: non-finite value %g", v)
	}
	old := t.values[i]
	t.values[i] = v
	if old <= t.valRange.Lo || old >= t.valRange.Hi {
		t.rescanRange()
		return nil
	}
	if v < t.valRange.Lo {
		t.valRange.Lo = v
	}
	if v > t.valRange.Hi {
		t.valRange.Hi = v
	}
	return nil
}

func (t *TIN) rescanRange() {
	vr := t.valRange
	vr.Lo, vr.Hi = math.Inf(1), math.Inf(-1)
	for _, v := range t.values {
		if v < vr.Lo {
			vr.Lo = v
		}
		if v > vr.Hi {
			vr.Hi = v
		}
	}
	t.valRange = vr
}

// IncidentCells implements field.Mutable via a lazily built vertex→triangle
// incidence index (built once, on the first update that needs it).
func (t *TIN) IncidentCells(i int, dst []field.CellID) []field.CellID {
	if i < 0 || i >= len(t.points) {
		return dst
	}
	if t.vertTris == nil {
		vt := make([][]int32, len(t.points))
		for ti, tr := range t.tris {
			for _, v := range tr {
				vt[v] = append(vt[v], int32(ti))
			}
		}
		t.vertTris = vt
	}
	for _, ti := range t.vertTris[i] {
		dst = append(dst, field.CellID(ti))
	}
	return dst
}

var _ field.Mutable = (*TIN)(nil)
