package tin

import (
	"fmt"
	"math"

	"fielddb/internal/band"
	"fielddb/internal/field"
	"fielddb/internal/geom"
)

// TIN is a continuous field over a triangulated irregular network.
type TIN struct {
	points   []geom.Point
	values   []float64
	tris     []Triangle
	bounds   geom.Rect
	valRange geom.Interval

	// Uniform-grid triangle locator for O(1) expected point location.
	locSide  int
	locCells [][]int32

	// Vertex→triangle incidence, built lazily by IncidentCells.
	vertTris [][]int32
}

// New builds a TIN from points, their sample values, and a triangulation.
func New(points []geom.Point, values []float64, tris []Triangle) (*TIN, error) {
	if len(points) != len(values) {
		return nil, fmt.Errorf("tin: %d points but %d values", len(points), len(values))
	}
	if len(tris) == 0 {
		return nil, fmt.Errorf("tin: no triangles")
	}
	vr := geom.EmptyInterval()
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("tin: non-finite value %g", v)
		}
		if v < vr.Lo {
			vr.Lo = v
		}
		if v > vr.Hi {
			vr.Hi = v
		}
	}
	for ti, tr := range tris {
		for _, v := range tr {
			if v < 0 || int(v) >= len(points) {
				return nil, fmt.Errorf("tin: triangle %d references vertex %d of %d", ti, v, len(points))
			}
		}
	}
	t := &TIN{
		points:   points,
		values:   values,
		tris:     tris,
		bounds:   geom.RectFromPoints(points...),
		valRange: vr,
	}
	t.buildLocator()
	return t, nil
}

// FromPoints triangulates the points with Delaunay and builds the TIN.
func FromPoints(points []geom.Point, values []float64) (*TIN, error) {
	tris, err := Delaunay(points)
	if err != nil {
		return nil, err
	}
	return New(points, values, tris)
}

// buildLocator assigns each triangle to every locator bucket its bounding
// box overlaps.
func (t *TIN) buildLocator() {
	side := int(math.Sqrt(float64(len(t.tris))))
	if side < 1 {
		side = 1
	}
	if side > 512 {
		side = 512
	}
	t.locSide = side
	t.locCells = make([][]int32, side*side)
	w, h := t.bounds.Width(), t.bounds.Height()
	if w == 0 || h == 0 {
		for i := range t.locCells {
			for ti := range t.tris {
				t.locCells[i] = append(t.locCells[i], int32(ti))
			}
		}
		return
	}
	for ti, tr := range t.tris {
		b := geom.RectFromPoints(t.points[tr[0]], t.points[tr[1]], t.points[tr[2]])
		c0 := t.clampBucket(int(float64(side) * (b.Min.X - t.bounds.Min.X) / w))
		c1 := t.clampBucket(int(float64(side) * (b.Max.X - t.bounds.Min.X) / w))
		r0 := t.clampBucket(int(float64(side) * (b.Min.Y - t.bounds.Min.Y) / h))
		r1 := t.clampBucket(int(float64(side) * (b.Max.Y - t.bounds.Min.Y) / h))
		for r := r0; r <= r1; r++ {
			for c := c0; c <= c1; c++ {
				t.locCells[r*side+c] = append(t.locCells[r*side+c], int32(ti))
			}
		}
	}
}

func (t *TIN) clampBucket(i int) int {
	if i < 0 {
		return 0
	}
	if i >= t.locSide {
		return t.locSide - 1
	}
	return i
}

// NumCells implements field.Field.
func (t *TIN) NumCells() int { return len(t.tris) }

// NumPoints returns the number of sample points.
func (t *TIN) NumPoints() int { return len(t.points) }

// Cell implements field.Field.
func (t *TIN) Cell(id field.CellID, dst *field.Cell) *field.Cell {
	tr := t.tris[id]
	if cap(dst.Vertices) < 3 {
		dst.Vertices = make([]geom.Point, 3)
	}
	dst.Vertices = dst.Vertices[:3]
	if cap(dst.Values) < 3 {
		dst.Values = make([]float64, 3)
	}
	dst.Values = dst.Values[:3]
	dst.ID = id
	for i, v := range tr {
		dst.Vertices[i] = t.points[v]
		dst.Values[i] = t.values[v]
	}
	return dst
}

// Bounds implements field.Field.
func (t *TIN) Bounds() geom.Rect { return t.bounds }

// ValueRange implements field.Field.
func (t *TIN) ValueRange() geom.Interval { return t.valRange }

// Locate implements field.Field via the uniform-grid locator.
func (t *TIN) Locate(p geom.Point) (field.CellID, bool) {
	if !t.bounds.ContainsPoint(p) {
		return 0, false
	}
	w, h := t.bounds.Width(), t.bounds.Height()
	col, row := 0, 0
	if w > 0 {
		col = t.clampBucket(int(float64(t.locSide) * (p.X - t.bounds.Min.X) / w))
	}
	if h > 0 {
		row = t.clampBucket(int(float64(t.locSide) * (p.Y - t.bounds.Min.Y) / h))
	}
	for _, ti := range t.locCells[row*t.locSide+col] {
		tr := t.tris[ti]
		if _, ok := band.TriangleValue(
			t.points[tr[0]], t.points[tr[1]], t.points[tr[2]],
			t.values[tr[0]], t.values[tr[1]], t.values[tr[2]], p); ok {
			return field.CellID(ti), true
		}
	}
	return 0, false
}

var _ field.Field = (*TIN)(nil)
