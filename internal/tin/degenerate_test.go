package tin

import (
	"math"
	"math/rand"
	"testing"

	"fielddb/internal/field"
	"fielddb/internal/geom"
)

// TestDelaunayJitteredGrid exercises the near-cocircular regime: grid
// points are maximally degenerate for Delaunay (every unit square's corners
// are cocircular), and a small jitter leaves many quadruples numerically
// borderline. The triangulation must still tile the hull.
func TestDelaunayJitteredGrid(t *testing.T) {
	for _, jitter := range []float64{1e-3, 1e-6} {
		rng := rand.New(rand.NewSource(42))
		var pts []geom.Point
		const n = 12
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				pts = append(pts, geom.Pt(
					float64(x)+rng.NormFloat64()*jitter,
					float64(y)+rng.NormFloat64()*jitter,
				))
			}
		}
		tris, err := Delaunay(pts)
		if err != nil {
			t.Fatalf("jitter %g: %v", jitter, err)
		}
		// Area must equal the hull area ≈ (n-1)² up to jitter.
		total := 0.0
		for _, tr := range tris {
			a := geom.Polygon{pts[tr[0]], pts[tr[1]], pts[tr[2]]}.Area()
			if a < 0 {
				t.Fatalf("jitter %g: negative-area triangle", jitter)
			}
			total += a
		}
		want := float64((n - 1) * (n - 1))
		if math.Abs(total-want) > 0.05*want {
			t.Fatalf("jitter %g: triangulated area %g, want ≈ %g", jitter, total, want)
		}
		// Triangle count for a tiling of a point set: 2(n²) - 2 - h where
		// h is the hull size; with jitter h ≈ 4(n-1). Accept a range.
		if len(tris) < n*n || len(tris) > 2*n*n {
			t.Fatalf("jitter %g: %d triangles for %d points", jitter, len(tris), n*n)
		}
	}
}

// TestTINFromJitteredGridQueries runs the full value-query pipeline over a
// TIN built from near-degenerate input.
func TestTINFromJitteredGridQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var pts []geom.Point
	var vals []float64
	const n = 10
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			p := geom.Pt(float64(x)+rng.NormFloat64()*1e-4, float64(y)+rng.NormFloat64()*1e-4)
			pts = append(pts, p)
			vals = append(vals, p.X+p.Y)
		}
	}
	tn, err := FromPoints(pts, vals)
	if err != nil {
		t.Fatal(err)
	}
	// Every cell's band partition must cover the cell.
	var c field.Cell
	for id := 0; id < tn.NumCells(); id++ {
		tn.Cell(field.CellID(id), &c)
		iv := c.Interval()
		mid := (iv.Lo + iv.Hi) / 2
		below := 0.0
		for _, pg := range field.Band(&c, iv.Lo-1, mid) {
			below += pg.Area()
		}
		above := 0.0
		for _, pg := range field.Band(&c, mid, iv.Hi+1) {
			above += pg.Area()
		}
		cellArea := (geom.Polygon{c.Vertices[0], c.Vertices[1], c.Vertices[2]}).Area()
		if math.Abs(below+above-cellArea) > 1e-6*(cellArea+1e-12) {
			t.Fatalf("cell %d: bands cover %g of %g", id, below+above, cellArea)
		}
	}
}
