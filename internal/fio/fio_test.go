package fio

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"fielddb/internal/field"
	"fielddb/internal/geom"
	"fielddb/internal/grid"
	"fielddb/internal/tin"
	"fielddb/internal/workload"
)

func TestDEMRoundtrip(t *testing.T) {
	d, err := workload.Terrain(32, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveDEM(&buf, d); err != nil {
		t.Fatal(err)
	}
	f, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d2, ok := f.(*grid.DEM)
	if !ok {
		t.Fatalf("loaded %T", f)
	}
	if d2.NumCells() != d.NumCells() {
		t.Fatalf("cells %d vs %d", d2.NumCells(), d.NumCells())
	}
	if d2.Bounds() != d.Bounds() {
		t.Fatalf("bounds %v vs %v", d2.Bounds(), d.Bounds())
	}
	nx, ny := d.Size()
	for r := 0; r <= ny; r += 5 {
		for c := 0; c <= nx; c += 5 {
			if d2.VertexHeight(c, r) != d.VertexHeight(c, r) {
				t.Fatalf("height (%d,%d) differs", c, r)
			}
		}
	}
}

func TestTINRoundtrip(t *testing.T) {
	tn, err := workload.NoiseTIN(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTIN(&buf, tn); err != nil {
		t.Fatal(err)
	}
	f, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tn2, ok := f.(*tin.TIN)
	if !ok {
		t.Fatalf("loaded %T", f)
	}
	if tn2.NumCells() != tn.NumCells() {
		t.Fatalf("cells %d vs %d", tn2.NumCells(), tn.NumCells())
	}
	// Interpolated values agree at random probes.
	for i := 0; i < 100; i++ {
		p := geom.Pt(float64(i%10)*400+10, float64(i/10)*300+10)
		w1, ok1 := field.ValueAt(tn, p)
		w2, ok2 := field.ValueAt(tn2, p)
		if ok1 != ok2 {
			t.Fatalf("probe %v: coverage differs", p)
		}
		if ok1 && math.Abs(w1-w2) > 1e-9 {
			t.Fatalf("probe %v: %g vs %g", p, w1, w2)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "field.fdb")
	d, _ := workload.Monotonic(8)
	if err := SaveFile(path, d); err != nil {
		t.Fatal(err)
	}
	f, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumCells() != 64 {
		t.Fatalf("cells = %d", f.NumCells())
	}
	if err := SaveFile(filepath.Join(t.TempDir(), "x"), nil); err == nil {
		t.Fatal("nil field accepted")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("BOGUS!"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Load(bytes.NewReader([]byte{'F', 'D', 'B', '1', 9})); err == nil {
		t.Fatal("bad kind accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated DEM payload.
	var buf bytes.Buffer
	d, _ := workload.Monotonic(4)
	if err := SaveDEM(&buf, d); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated DEM accepted")
	}
}

func TestSaveFileTINAndErrors(t *testing.T) {
	dir := t.TempDir()
	tn, err := workload.NoiseTIN(60, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "noise.fdb")
	if err := SaveFile(path, tn); err != nil {
		t.Fatal(err)
	}
	f, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumCells() != tn.NumCells() {
		t.Fatalf("cells %d vs %d", f.NumCells(), tn.NumCells())
	}
	// Unwritable path.
	if err := SaveFile(filepath.Join(dir, "nodir", "x.fdb"), tn); err == nil {
		t.Fatal("unwritable path accepted")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.fdb")); err == nil {
		t.Fatal("missing file accepted")
	}
}
