// Package fio reads and writes field datasets as portable binary files, so
// the command-line tools can generate a dataset once (fieldgen) and query it
// repeatedly (fieldquery, fieldbench).
//
// Format (little endian):
//
//	magic   [4]byte "FDB1"
//	kind    u8      1 = DEM, 2 = TIN
//	DEM:    originX, originY, dx, dy float64; nx, ny uint32;
//	        (nx+1)*(ny+1) float64 vertex heights (row-major)
//	TIN:    nPoints, nTris uint32;
//	        nPoints × (x, y, w float64); nTris × (a, b, c uint32)
package fio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"fielddb/internal/field"
	"fielddb/internal/geom"
	"fielddb/internal/grid"
	"fielddb/internal/tin"
)

var magic = [4]byte{'F', 'D', 'B', '1'}

const (
	kindDEM = 1
	kindTIN = 2
)

// SaveDEM writes d to w.
func SaveDEM(w io.Writer, d *grid.DEM) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(kindDEM); err != nil {
		return err
	}
	nx, ny := d.Size()
	b := d.Bounds()
	dx := b.Width() / float64(nx)
	dy := b.Height() / float64(ny)
	for _, v := range []float64{b.Min.X, b.Min.Y, dx, dy} {
		if err := writeF64(bw, v); err != nil {
			return err
		}
	}
	if err := writeU32(bw, uint32(nx)); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(ny)); err != nil {
		return err
	}
	for r := 0; r <= ny; r++ {
		for c := 0; c <= nx; c++ {
			if err := writeF64(bw, d.VertexHeight(c, r)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SaveTIN writes t to w.
func SaveTIN(w io.Writer, t *tin.TIN) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(kindTIN); err != nil {
		return err
	}
	// Reconstruct the point/triangle arrays through the Field interface.
	pts, vals, tris := flattenTIN(t)
	if err := writeU32(bw, uint32(len(pts))); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(tris))); err != nil {
		return err
	}
	for i, p := range pts {
		if err := writeF64(bw, p.X); err != nil {
			return err
		}
		if err := writeF64(bw, p.Y); err != nil {
			return err
		}
		if err := writeF64(bw, vals[i]); err != nil {
			return err
		}
	}
	for _, tr := range tris {
		for _, v := range tr {
			if err := writeU32(bw, uint32(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// flattenTIN extracts unique vertices and triangle index triples from a TIN
// via its cells.
func flattenTIN(t *tin.TIN) ([]geom.Point, []float64, []tin.Triangle) {
	type key struct{ x, y float64 }
	indexOf := map[key]int32{}
	var pts []geom.Point
	var vals []float64
	var tris []tin.Triangle
	var c field.Cell
	for id := 0; id < t.NumCells(); id++ {
		t.Cell(field.CellID(id), &c)
		var tr tin.Triangle
		for i := 0; i < 3; i++ {
			k := key{c.Vertices[i].X, c.Vertices[i].Y}
			idx, ok := indexOf[k]
			if !ok {
				idx = int32(len(pts))
				indexOf[k] = idx
				pts = append(pts, c.Vertices[i])
				vals = append(vals, c.Values[i])
			}
			tr[i] = idx
		}
		tris = append(tris, tr)
	}
	return pts, vals, tris
}

// Load reads a field file and returns the field (either *grid.DEM or
// *tin.TIN).
func Load(r io.Reader) (field.Field, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("fio: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("fio: bad magic %q", m)
	}
	kind, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	switch kind {
	case kindDEM:
		return loadDEM(br)
	case kindTIN:
		return loadTIN(br)
	default:
		return nil, fmt.Errorf("fio: unknown field kind %d", kind)
	}
}

func loadDEM(br *bufio.Reader) (*grid.DEM, error) {
	var hdr [4]float64
	for i := range hdr {
		v, err := readF64(br)
		if err != nil {
			return nil, err
		}
		hdr[i] = v
	}
	nx, err := readU32(br)
	if err != nil {
		return nil, err
	}
	ny, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if nx == 0 || ny == 0 || nx > 1<<20 || ny > 1<<20 {
		return nil, fmt.Errorf("fio: implausible DEM size %dx%d", nx, ny)
	}
	heights := make([]float64, (nx+1)*(ny+1))
	for i := range heights {
		v, err := readF64(br)
		if err != nil {
			return nil, err
		}
		heights[i] = v
	}
	return grid.New(geom.Pt(hdr[0], hdr[1]), hdr[2], hdr[3], int(nx), int(ny), heights)
}

func loadTIN(br *bufio.Reader) (*tin.TIN, error) {
	nPoints, err := readU32(br)
	if err != nil {
		return nil, err
	}
	nTris, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if nPoints < 3 || nPoints > 1<<26 || nTris == 0 || nTris > 1<<27 {
		return nil, fmt.Errorf("fio: implausible TIN size %d points / %d triangles", nPoints, nTris)
	}
	pts := make([]geom.Point, nPoints)
	vals := make([]float64, nPoints)
	for i := range pts {
		x, err := readF64(br)
		if err != nil {
			return nil, err
		}
		y, err := readF64(br)
		if err != nil {
			return nil, err
		}
		w, err := readF64(br)
		if err != nil {
			return nil, err
		}
		pts[i] = geom.Pt(x, y)
		vals[i] = w
	}
	tris := make([]tin.Triangle, nTris)
	for i := range tris {
		for j := 0; j < 3; j++ {
			v, err := readU32(br)
			if err != nil {
				return nil, err
			}
			tris[i][j] = int32(v)
		}
	}
	return tin.New(pts, vals, tris)
}

// SaveFile writes f (a *grid.DEM or *tin.TIN) to path.
func SaveFile(path string, f field.Field) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	switch v := f.(type) {
	case *grid.DEM:
		if err := SaveDEM(out, v); err != nil {
			return err
		}
	case *tin.TIN:
		if err := SaveTIN(out, v); err != nil {
			return err
		}
	default:
		return fmt.Errorf("fio: unsupported field type %T", f)
	}
	return out.Close()
}

// LoadFile reads a field file from path.
func LoadFile(path string) (field.Field, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return Load(in)
}

func writeF64(w io.Writer, v float64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	_, err := w.Write(b[:])
	return err
}

func readF64(r io.Reader) (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}
