package ipindex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fielddb/internal/field"
	"fielddb/internal/fractal"
	"fielddb/internal/geom"
	"fielddb/internal/grid"
)

func testDEM(t testing.TB, side int) *grid.DEM {
	t.Helper()
	heights, err := fractal.DiamondSquare(side, 0.6, 77)
	if err != nil {
		t.Fatal(err)
	}
	fractal.Normalize(heights, 0, 100)
	d, err := grid.New(geom.Pt(0, 0), 1, 1, side, side, heights)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestQueryMatchesBruteForce(t *testing.T) {
	d := testDEM(t, 32)
	ix := Build(d)
	if ix.NumRows() != 32 {
		t.Fatalf("rows = %d", ix.NumRows())
	}
	rng := rand.New(rand.NewSource(5))
	var c field.Cell
	for trial := 0; trial < 100; trial++ {
		lo := rng.Float64() * 100
		q := geom.Interval{Lo: lo, Hi: lo + rng.Float64()*20}
		want := map[field.CellID]bool{}
		for id := 0; id < d.NumCells(); id++ {
			d.Cell(field.CellID(id), &c)
			if c.Interval().Intersects(q) {
				want[field.CellID(id)] = true
			}
		}
		got := map[field.CellID]bool{}
		ix.Query(q, func(id field.CellID) bool {
			got[id] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d want %d", q, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("query %v: missing cell %d", q, id)
			}
		}
	}
}

func TestQueryEdgeCases(t *testing.T) {
	d := testDEM(t, 8)
	ix := Build(d)
	// Empty query interval.
	count := 0
	ix.Query(geom.EmptyInterval(), func(field.CellID) bool { count++; return true })
	if count != 0 {
		t.Fatal("empty query returned cells")
	}
	// Out-of-range query.
	ix.Query(geom.Interval{Lo: 1000, Hi: 2000}, func(field.CellID) bool { count++; return true })
	if count != 0 {
		t.Fatal("out-of-range query returned cells")
	}
	// Full-range query returns every cell.
	ix.Query(geom.Interval{Lo: -1000, Hi: 2000}, func(field.CellID) bool { count++; return true })
	if count != d.NumCells() {
		t.Fatalf("full query returned %d of %d", count, d.NumCells())
	}
	// Early stop.
	count = 0
	ix.Query(geom.Interval{Lo: -1000, Hi: 2000}, func(field.CellID) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestQuickProperty(t *testing.T) {
	d := testDEM(t, 16)
	ix := Build(d)
	var c field.Cell
	f := func(rawLo, rawW float64) bool {
		lo := float64(int(rawLo*1e3)%100+100) / 2 // deterministic fold into [0,100]
		if lo < 0 {
			lo = -lo
		}
		w := float64(int(rawW*1e3)%40+40) / 2
		if w < 0 {
			w = -w
		}
		q := geom.Interval{Lo: lo, Hi: lo + w}
		want := 0
		for id := 0; id < d.NumCells(); id++ {
			d.Cell(field.CellID(id), &c)
			if c.Interval().Intersects(q) {
				want++
			}
		}
		got := 0
		ix.Query(q, func(field.CellID) bool { got++; return true })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkQuery(b *testing.B) {
	d := testDEM(b, 128)
	ix := Build(d)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Float64() * 95
		count := 0
		ix.Query(geom.Interval{Lo: lo, Hi: lo + 2}, func(field.CellID) bool { count++; return true })
	}
}
