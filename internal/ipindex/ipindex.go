// Package ipindex implements a row-wise value index in the spirit of the
// IP-index of Lin, Risch, Sköld & Badal (CIKM 1996), which the paper's
// related work (§2.3) discusses: Lin & Risch applied one IP-index per DEM
// row for terrain-aided navigation, treating each row as a 1-D time
// sequence.
//
// For each grid row, the index stores the row's cells ordered by interval
// low bound, with a running suffix maximum of the high bounds, so the cells
// of one row whose intervals intersect a query interval are found in
// O(log n + k) without touching the rest of the row.
//
// The paper's critique — that this design exploits continuity along one
// axis only (the X axis) and therefore cannot cluster candidates the way
// 2-D Hilbert subfields do — is reproduced by the comparison benchmark in
// internal/bench: the per-row candidate runs are scattered across the rows
// of the heap file.
package ipindex

import (
	"sort"

	"fielddb/internal/field"
	"fielddb/internal/geom"
	"fielddb/internal/grid"
)

// rowEntry is one cell of a row, positioned by its value interval.
type rowEntry struct {
	cell      field.CellID
	iv        geom.Interval
	suffixMax float64 // max of iv.Hi over this and all later entries
}

// Index is a per-row value index over a regular-grid DEM.
type Index struct {
	rows [][]rowEntry
}

// Build constructs the row-wise index for a DEM.
func Build(d *grid.DEM) *Index {
	nx, ny := d.Size()
	idx := &Index{rows: make([][]rowEntry, ny)}
	var c field.Cell
	for row := 0; row < ny; row++ {
		entries := make([]rowEntry, nx)
		for col := 0; col < nx; col++ {
			id := field.CellID(row*nx + col)
			d.Cell(id, &c)
			entries[col] = rowEntry{cell: id, iv: c.Interval()}
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].iv.Lo < entries[j].iv.Lo })
		max := entries[len(entries)-1].iv.Hi
		for i := len(entries) - 1; i >= 0; i-- {
			if entries[i].iv.Hi > max {
				max = entries[i].iv.Hi
			}
			entries[i].suffixMax = max
		}
		idx.rows[row] = entries
	}
	return idx
}

// NumRows returns the number of indexed rows.
func (ix *Index) NumRows() int { return len(ix.rows) }

// Query visits every cell whose interval intersects q, row by row.
// Returning false stops the traversal.
func (ix *Index) Query(q geom.Interval, fn func(field.CellID) bool) {
	if q.IsEmpty() {
		return
	}
	for _, row := range ix.rows {
		// Candidates have Lo <= q.Hi; binary search for the cut, then walk
		// the prefix, pruning via the suffix maximum of Hi.
		cut := sort.Search(len(row), func(i int) bool { return row[i].iv.Lo > q.Hi })
		for i := 0; i < cut; i++ {
			// suffixMax bounds Hi over every entry from i on, so once it
			// drops below q.Lo nothing later can intersect either.
			if row[i].suffixMax < q.Lo {
				break
			}
			if row[i].iv.Hi >= q.Lo {
				if !fn(row[i].cell) {
					return
				}
			}
		}
	}
}
