package fielddb

// Live updates and snapshot reads: the facade over internal/core's epoch-based
// MVCC update engine. UpdateSamples applies a batch of sample-value changes to
// the field, both stores, and the value index as one atomic step; Snapshot
// hands out pinned point-in-time views that keep answering at their epoch no
// matter how many batches commit afterwards. Readers never block on updaters
// and never see a torn field.

import (
	"context"
	"fmt"
	"sync"

	"fielddb/internal/core"
	"fielddb/internal/field"
	"fielddb/internal/geom"
	"fielddb/internal/storage"
)

// Re-exported live-update types (internal/core).
type (
	// SampleUpdate assigns a new value to one field sample (a grid vertex or
	// TIN point).
	SampleUpdate = core.SampleUpdate
	// UpdateResult reports one committed update batch on a single store: the
	// new storage epoch, the work done (samples, cells, pages), and whether
	// the subfield partition was re-cut.
	UpdateResult = core.UpdateResult
)

// UpdateStats reports one UpdateSamples batch across both stores. The
// embedded UpdateResult is the value plane's (its IO is read activity on the
// value store, published to that store's totals); the Spatial fields account
// for the spatial store's record patch the same way, so callers can reconcile
// either store's totals against the sum of published per-operation stats.
type UpdateStats struct {
	UpdateResult
	// SpatialEpoch is the epoch the spatial store's patch committed.
	SpatialEpoch uint64
	// SpatialPagesWritten counts the spatial store's copy-on-write overlays.
	SpatialPagesWritten int
	// SpatialIO is the patch's read activity on the spatial store.
	SpatialIO storage.Stats
}

// UpdateSamples applies a batch of sample-value changes and commits it as one
// new storage epoch per store. The batch is atomic with respect to readers:
// every query — including ones already running — answers against either the
// pre-batch or the post-batch state, byte for byte, never a mixture, and no
// reader ever blocks on the update. The field itself, the value index's cell
// records and interval sidecar, the index structure (with a lazy re-cut of the
// subfield partition when the §3 cost bound drifts), and the spatial store's
// cell records are all brought to the new state.
//
// Updates require a mutable field (grid.DEM and tin.TIN qualify) and a
// supporting value index; IQuad and indexes reopened from pre-sidecar files
// return ErrUpdatesUnsupported. Concurrent UpdateSamples calls serialize.
//
// On error before the value index commits, nothing changed. If the spatial
// store's patch fails after the value index committed (possible only with an
// injected fault or a canceled ctx), the returned *UpdateStats is non-nil
// alongside the error: the value plane moved to its new epoch but the spatial
// store kept its old records, and the error says so.
func (db *DB) UpdateSamples(ctx context.Context, updates []SampleUpdate) (*UpdateStats, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	if len(updates) == 0 {
		return nil, fmt.Errorf("fielddb: empty update batch")
	}
	mf, ok := db.field.(field.Mutable)
	if !ok {
		return nil, fmt.Errorf("%w: field %T is immutable", ErrUpdatesUnsupported, db.field)
	}
	up, ok := db.index.(core.Updater)
	if !ok {
		return nil, fmt.Errorf("%w: method %s", ErrUpdatesUnsupported, db.Method())
	}
	db.updateMu.Lock()
	defer db.updateMu.Unlock()
	// Widen the cached value range with the batch's values before anything
	// commits: ValueAbove/ValueBelow read the cache without locking, and a
	// conservatively wide range only pads their query interval, while a
	// stale-narrow one could miss a new extreme mid-batch.
	db.widenRange(updates)
	res, err := up.ApplyUpdates(ctx, mf, updates)
	if err != nil {
		return nil, err
	}
	out := &UpdateStats{UpdateResult: *res}
	spRes, spErr := db.spatial.ApplyUpdates(ctx, mf, updates)
	if spRes != nil {
		out.SpatialEpoch = spRes.Epoch
		out.SpatialPagesWritten = spRes.PagesWritten
		out.SpatialIO = spRes.IO
	}
	if spErr != nil {
		return out, fmt.Errorf("fielddb: spatial store update failed after value commit: %w", spErr)
	}
	// Both stores committed; snap the cache back to the field's exact range
	// (it may narrow when an update moved a sample off an extreme). The
	// index state was published before this store, so any reader that sees
	// the narrowed range also sees the post-batch field.
	vr := mf.ValueRange()
	db.vrange.Store(&vr)
	return out, nil
}

// widenRange grows the cached value range to cover every value in the batch.
// Callers hold updateMu.
func (db *DB) widenRange(updates []SampleUpdate) {
	cur := db.vrange.Load()
	wide := *cur
	for _, u := range updates {
		if u.Value < wide.Lo {
			wide.Lo = u.Value
		}
		if u.Value > wide.Hi {
			wide.Hi = u.Value
		}
	}
	if wide != *cur {
		db.vrange.Store(&wide)
	}
}

// valueRange returns the cached field value range, kept current (or
// conservatively wide, mid-update) by UpdateSamples. Reading the field's own
// ValueRange here would race with a concurrent updater's SetSample.
func (db *DB) valueRange() Interval {
	return *db.vrange.Load()
}

// Snapshot is a pinned point-in-time view of the database's value index:
// every query through the handle answers against the storage epoch and index
// state that were current at acquisition, byte for byte, regardless of update
// batches committing in the meantime. Holding a snapshot keeps its epoch's
// page versions alive (delaying overlay compaction), so Close it when done;
// Close is idempotent. Queries through a snapshot trace and meter exactly
// like live queries.
type Snapshot struct {
	db   *DB
	snap core.Snapshot
	once sync.Once
}

// Snapshot acquires a pinned point-in-time view of the value index.
func (db *DB) Snapshot() (*Snapshot, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	sq, ok := db.index.(core.SnapshotQuerier)
	if !ok {
		return nil, fmt.Errorf("%w: method %s has no snapshots", ErrUpdatesUnsupported, db.Method())
	}
	return &Snapshot{db: db, snap: sq.AcquireSnapshot()}, nil
}

// Epoch returns the storage epoch the snapshot reads.
func (s *Snapshot) Epoch() uint64 { return s.snap.Epoch() }

// ValueQuery answers F⁻¹(lo ≤ w ≤ hi) at the snapshot's epoch.
func (s *Snapshot) ValueQuery(lo, hi float64) (*Result, error) {
	return s.ValueQueryContext(context.Background(), lo, hi)
}

// ValueQueryContext is ValueQuery with cancellation.
func (s *Snapshot) ValueQueryContext(ctx context.Context, lo, hi float64) (*Result, error) {
	if err := s.db.checkOpen(); err != nil {
		return nil, err
	}
	if err := checkInterval(lo, hi); err != nil {
		return nil, err
	}
	return s.snap.QueryContext(ctx, geom.Interval{Lo: lo, Hi: hi})
}

// Close releases the snapshot's epoch pin. Safe to call more than once.
func (s *Snapshot) Close() error {
	s.once.Do(func() { s.snap.Close() })
	return nil
}
