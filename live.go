package fielddb

// Live updates and snapshot reads: the facade over internal/core's epoch-based
// MVCC update engine. UpdateSamples applies a batch of sample-value changes to
// the field, both stores, and the value index as one atomic step; Snapshot
// hands out pinned point-in-time views that keep answering at their epoch no
// matter how many batches commit afterwards. Readers never block on updaters
// and never see a torn field.

import (
	"context"
	"fmt"
	"sync"

	"fielddb/internal/core"
	"fielddb/internal/field"
	"fielddb/internal/geom"
	"fielddb/internal/storage"
)

// Re-exported live-update types (internal/core).
type (
	// SampleUpdate assigns a new value to one field sample (a grid vertex or
	// TIN point).
	SampleUpdate = core.SampleUpdate
	// UpdateResult reports one committed update batch on a single store: the
	// new storage epoch, the work done (samples, cells, pages), and whether
	// the subfield partition was re-cut.
	UpdateResult = core.UpdateResult
)

// UpdateStats reports one UpdateSamples batch across both stores. The
// embedded UpdateResult is the value plane's (its IO is read activity on the
// value store, published to that store's totals); the Spatial fields account
// for the spatial store's record patch the same way, so callers can reconcile
// either store's totals against the sum of published per-operation stats.
type UpdateStats struct {
	UpdateResult
	// SpatialEpoch is the epoch the spatial store's patch committed.
	SpatialEpoch uint64
	// SpatialPagesWritten counts the spatial store's copy-on-write overlays.
	SpatialPagesWritten int
	// SpatialIO is the patch's read activity on the spatial store.
	SpatialIO storage.Stats
}

// UpdateSamples applies a batch of sample-value changes and commits it as one
// new storage epoch per store. The batch is atomic with respect to readers:
// every query — including ones already running — answers against either the
// pre-batch or the post-batch state, byte for byte, never a mixture, and no
// reader ever blocks on the update. The field itself, the value index's cell
// records and interval sidecar, the index structure (with a lazy re-cut of the
// subfield partition when the §3 cost bound drifts), and the spatial store's
// cell records are all brought to the new state.
//
// Updates require a mutable field (grid.DEM and tin.TIN qualify) and a
// supporting value index; IQuad and indexes reopened from pre-sidecar files
// return ErrUpdatesUnsupported. Concurrent UpdateSamples calls serialize.
//
// On error before the value index commits, nothing changed. If the spatial
// store's patch fails after the value index committed (possible only with an
// injected fault or a canceled ctx), the returned *UpdateStats is non-nil
// alongside the error: the value plane moved to its new epoch but the spatial
// store kept its old records, and the error says so.
func (db *DB) UpdateSamples(ctx context.Context, updates []SampleUpdate) (*UpdateStats, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	if len(updates) == 0 {
		return nil, fmt.Errorf("fielddb: empty update batch")
	}
	mf, ok := db.field.(field.Mutable)
	if !ok {
		return nil, fmt.Errorf("%w: field %T is immutable", ErrUpdatesUnsupported, db.field)
	}
	up, ok := db.index.(core.Updater)
	if !ok {
		return nil, fmt.Errorf("%w: method %s", ErrUpdatesUnsupported, db.Method())
	}
	db.updateMu.Lock()
	defer db.updateMu.Unlock()
	// Widen the cached value range with the batch's values before anything
	// commits: ValueAbove/ValueBelow read the cache without locking, and a
	// conservatively wide range only pads their query interval, while a
	// stale-narrow one could miss a new extreme mid-batch.
	db.widenRange(updates)
	res, err := up.ApplyUpdates(ctx, mf, updates)
	if err != nil {
		return nil, err
	}
	out := &UpdateStats{UpdateResult: *res}
	spRes, spErr := db.spatial.ApplyUpdates(ctx, mf, updates)
	if spRes != nil {
		out.SpatialEpoch = spRes.Epoch
		out.SpatialPagesWritten = spRes.PagesWritten
		out.SpatialIO = spRes.IO
	}
	if spErr != nil {
		return out, fmt.Errorf("fielddb: spatial store update failed after value commit: %w", spErr)
	}
	// Both stores committed; snap the cache back to the field's exact range
	// (it may narrow when an update moved a sample off an extreme). The
	// index state was published before this store, so any reader that sees
	// the narrowed range also sees the post-batch field.
	vr := mf.ValueRange()
	db.vrange.Store(&vr)
	return out, nil
}

// widenRange grows the cached value range to cover every value in the batch.
// Callers hold updateMu.
func (db *DB) widenRange(updates []SampleUpdate) {
	cur := db.vrange.Load()
	wide := *cur
	for _, u := range updates {
		if u.Value < wide.Lo {
			wide.Lo = u.Value
		}
		if u.Value > wide.Hi {
			wide.Hi = u.Value
		}
	}
	if wide != *cur {
		db.vrange.Store(&wide)
	}
}

// valueRange returns the cached field value range, kept current (or
// conservatively wide, mid-update) by UpdateSamples. Reading the field's own
// ValueRange here would race with a concurrent updater's SetSample.
func (db *DB) valueRange() Interval {
	return *db.vrange.Load()
}

// Snapshot is a pinned point-in-time view of the database: every query
// through the handle answers against the storage epochs and index state that
// were current at acquisition, byte for byte, regardless of update batches
// committing in the meantime. Value queries read the value store's pinned
// epoch; point queries read the spatial store's (the R*-tree's geometry never
// changes under live updates, so pinning its heap pages pins the whole
// answer). Holding a snapshot keeps both epochs' page versions alive
// (delaying overlay compaction), so Close it when done; Close is idempotent.
// Queries through a snapshot trace and meter exactly like live queries.
type Snapshot struct {
	db     *DB
	snap   core.Snapshot
	spSnap *core.SpatialSnapshot
	// method, stats and vrange are captured at acquisition: an update batch
	// may re-cut the partition (changing Stats) or move the value range, and
	// the snapshot's answers must keep describing the pinned state.
	method Method
	stats  IndexStats
	vrange Interval
	once   sync.Once
}

// Snapshot acquires a pinned point-in-time view of the value and spatial
// indexes.
func (db *DB) Snapshot() (*Snapshot, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	sq, ok := db.index.(core.SnapshotQuerier)
	if !ok {
		return nil, fmt.Errorf("%w: method %s has no snapshots", ErrUpdatesUnsupported, db.Method())
	}
	return &Snapshot{
		db:     db,
		snap:   sq.AcquireSnapshot(),
		spSnap: db.spatial.AcquireSnapshot(),
		method: db.Method(),
		stats:  db.Stats(),
		vrange: db.valueRange(),
	}, nil
}

// Epoch returns the value store's storage epoch the snapshot reads.
func (s *Snapshot) Epoch() uint64 { return s.snap.Epoch() }

// Method returns the value-index strategy, as captured at acquisition.
func (s *Snapshot) Method() Method { return s.method }

// Stats describes the value index as it stood at acquisition (a later update
// batch may re-cut the live partition; the snapshot keeps describing the
// pinned state).
func (s *Snapshot) Stats() IndexStats { return s.stats }

// ValueRange returns the value-domain coverage captured at acquisition.
func (s *Snapshot) ValueRange() Interval { return s.vrange }

// ValueQuery answers F⁻¹(lo ≤ w ≤ hi) at the snapshot's epoch.
func (s *Snapshot) ValueQuery(lo, hi float64) (*Result, error) {
	return s.ValueQueryContext(context.Background(), lo, hi)
}

// ValueQueryContext is ValueQuery with cancellation.
func (s *Snapshot) ValueQueryContext(ctx context.Context, lo, hi float64) (*Result, error) {
	if err := s.db.checkOpen(); err != nil {
		return nil, err
	}
	if err := checkInterval(lo, hi); err != nil {
		return nil, err
	}
	return s.snap.QueryContext(ctx, geom.Interval{Lo: lo, Hi: hi})
}

// ValueAbove answers "where is the value at least lo" at the snapshot's
// epoch; the open end of the interval is the value range captured at
// acquisition.
func (s *Snapshot) ValueAbove(lo float64) (*Result, error) {
	return s.ValueAboveContext(context.Background(), lo)
}

// ValueAboveContext is ValueAbove with cancellation.
func (s *Snapshot) ValueAboveContext(ctx context.Context, lo float64) (*Result, error) {
	if err := checkValue(lo); err != nil {
		return nil, err
	}
	return s.ValueQueryContext(ctx, lo, s.vrange.Hi)
}

// ValueBelow answers "where is the value at most hi" at the snapshot's epoch.
func (s *Snapshot) ValueBelow(hi float64) (*Result, error) {
	return s.ValueBelowContext(context.Background(), hi)
}

// ValueBelowContext is ValueBelow with cancellation.
func (s *Snapshot) ValueBelowContext(ctx context.Context, hi float64) (*Result, error) {
	if err := checkValue(hi); err != nil {
		return nil, err
	}
	return s.ValueQueryContext(ctx, s.vrange.Lo, hi)
}

// ValueQueryBatch answers several value queries at the snapshot's epoch. The
// result contract matches DB.ValueQueryBatch — positionally aligned results,
// first failure wrapped with its position — but execution is sequential
// pinned-epoch queries, not a shared scan: the batch executor coalesces over
// the live index's current state, while a snapshot must answer at its pin.
func (s *Snapshot) ValueQueryBatch(ctx context.Context, intervals []Interval) ([]*Result, error) {
	if err := s.db.checkOpen(); err != nil {
		return nil, err
	}
	if err := checkBatch(intervals); err != nil {
		return nil, err
	}
	out := make([]*Result, len(intervals))
	var firstErr error
	for i, iv := range intervals {
		res, err := s.snap.QueryContext(ctx, geom.Interval{Lo: iv.Lo, Hi: iv.Hi})
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("query %d: %w", i, err)
			}
			continue
		}
		out[i] = res
	}
	return out, firstErr
}

// PointQuery answers the conventional query F(v') at the snapshot's pinned
// spatial epoch.
func (s *Snapshot) PointQuery(p Point) (float64, error) {
	return s.PointQueryContext(context.Background(), p)
}

// PointQueryContext is PointQuery with cancellation.
func (s *Snapshot) PointQueryContext(ctx context.Context, p Point) (float64, error) {
	w, _, err := s.PointQueryStatsContext(ctx, p)
	return w, err
}

// PointQueryStatsContext is PointQueryContext plus the query's own I/O
// statistics against the spatial store.
func (s *Snapshot) PointQueryStatsContext(ctx context.Context, p Point) (float64, storage.Stats, error) {
	if err := s.db.checkOpen(); err != nil {
		return 0, storage.Stats{}, err
	}
	if err := checkPoint(p); err != nil {
		return 0, storage.Stats{}, err
	}
	return s.spSnap.PointQueryContext(ctx, p)
}

// ContourMap answers F⁻¹(w = level) at the snapshot's epoch and assembles
// the isoline map.
func (s *Snapshot) ContourMap(level float64) (*ContourResult, error) {
	return s.ContourMapContext(context.Background(), level)
}

// ContourMapContext is ContourMap with cancellation of the underlying value
// query.
func (s *Snapshot) ContourMapContext(ctx context.Context, level float64) (*ContourResult, error) {
	res, err := s.ValueQueryContext(ctx, level, level)
	if err != nil {
		return nil, err
	}
	return assembleContours(s.db.tracer, s.db.metrics, s.method, level, res), nil
}

// Contours answers F⁻¹(w = level) at the snapshot's epoch, reduced to the
// polylines.
func (s *Snapshot) Contours(level float64) ([]Polyline, error) {
	return s.ContoursContext(context.Background(), level)
}

// ContoursContext is Contours with cancellation.
func (s *Snapshot) ContoursContext(ctx context.Context, level float64) ([]Polyline, error) {
	cr, err := s.ContourMapContext(ctx, level)
	if err != nil {
		return nil, err
	}
	return cr.Polylines, nil
}

// QueryMetrics returns the owning DB's engine metrics snapshot — snapshot
// queries meter into the same registry as live ones.
func (s *Snapshot) QueryMetrics() MetricsSnapshot { return s.db.metrics.Snapshot() }

// Close releases both epoch pins. Safe to call more than once.
func (s *Snapshot) Close() error {
	s.once.Do(func() {
		s.snap.Close()
		s.spSnap.Close()
	})
	return nil
}
