package fielddb

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fielddb/internal/geom"
	"fielddb/internal/obs"
	"fielddb/internal/storage"
)

// recordingTracer appends every trace in arrival order.
type recordingTracer struct {
	mu     sync.Mutex
	traces []*QueryTrace
}

func (r *recordingTracer) TraceQuery(t *QueryTrace) {
	r.mu.Lock()
	r.traces = append(r.traces, t)
	r.mu.Unlock()
}

func (r *recordingTracer) last(t *testing.T) *QueryTrace {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.traces) == 0 {
		t.Fatal("no trace emitted")
	}
	return r.traces[len(r.traces)-1]
}

// checkTrace asserts the core reconciliation invariant: the trace's span page
// counts sum exactly to the trace IO, which equals the query's own Result.IO.
func checkTrace(t *testing.T, tr *QueryTrace, io storage.Stats) {
	t.Helper()
	var sum obs.PageCounts
	for _, sp := range tr.Spans {
		sum = sum.Add(sp.Pages)
	}
	if sum != tr.IO {
		t.Fatalf("%s %s: span sum %+v != trace IO %+v", tr.Method, tr.Kind, sum, tr.IO)
	}
	want := io.PageCounts()
	if tr.IO != want {
		t.Fatalf("%s %s: trace IO %+v != query IO %+v", tr.Method, tr.Kind, tr.IO, want)
	}
	if tr.Err != "" {
		t.Fatalf("%s %s: unexpected trace error %q", tr.Method, tr.Kind, tr.Err)
	}
}

// TestTraceReconciliation is the acceptance criterion of the observability
// layer: for every query method and kind, the per-span page counts sum
// exactly to the query's own Result.IO.
func TestTraceReconciliation(t *testing.T) {
	dem, err := TerrainDEM(64, 42)
	if err != nil {
		t.Fatal(err)
	}
	vr := dem.ValueRange()
	for _, method := range []Method{LinearScan, IAll, IHilbert, IQuad, Auto} {
		t.Run(string(method), func(t *testing.T) {
			rec := &recordingTracer{}
			db, err := Open(dem, Options{Method: method, Tracer: rec})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			intervals := [][2]float64{
				{vr.Lo + vr.Length()*0.4, vr.Lo + vr.Length()*0.5}, // selective
				{vr.Lo, vr.Hi},           // everything
				{vr.Hi + 10, vr.Hi + 20}, // empty
				{vr.Lo + vr.Length()*0.5, vr.Lo + vr.Length()*0.5}, // zero width
			}
			for _, iv := range intervals {
				res, err := db.ValueQuery(iv[0], iv[1])
				if err != nil {
					t.Fatal(err)
				}
				tr := rec.last(t)
				if tr.Kind != obs.KindValue {
					t.Fatalf("kind %q", tr.Kind)
				}
				checkTrace(t, tr, res.IO)
				// LinearScan's filter step is sidecar-served by default: every
				// value query's trace must carry a sidecar-filter span whose
				// page reads are part of the sum checkTrace just verified.
				if method == LinearScan {
					var sidecar *Span
					for i := range tr.Spans {
						if tr.Spans[i].Phase == obs.PhaseSidecar {
							sidecar = &tr.Spans[i]
						}
					}
					if sidecar == nil {
						t.Fatalf("no sidecar-filter span in %v", tr.Spans)
					}
					if sidecar.Pages.Reads == 0 {
						t.Fatal("sidecar-filter span read no pages")
					}
				}
			}
			// Conventional (point) query against the spatial store.
			_, st, err := db.PointQueryStats(geom.Pt(12.5, 40.25))
			if err != nil {
				t.Fatal(err)
			}
			tr := rec.last(t)
			if tr.Kind != obs.KindPoint || tr.Method != "Spatial" {
				t.Fatalf("point trace %s %s", tr.Method, tr.Kind)
			}
			checkTrace(t, tr, st)
			// Approximate query (partition-based methods only).
			if ar, err := db.ApproxValueQuery(vr.Lo, vr.Lo+vr.Length()*0.25); err == nil {
				tr := rec.last(t)
				if tr.Kind != obs.KindApprox {
					t.Fatalf("approx kind %q", tr.Kind)
				}
				checkTrace(t, tr, ar.IO)
			} else if !errors.Is(err, ErrNoPartition) {
				t.Fatal(err)
			}
		})
	}
}

// TestTraceReconciliationParallel re-runs the invariant with a parallel
// refinement pool: worker contexts must merge into the refine span before it
// closes.
func TestTraceReconciliationParallel(t *testing.T) {
	dem, err := TerrainDEM(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingTracer{}
	db, err := Open(dem, Options{Workers: 4, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	vr := dem.ValueRange()
	res, err := db.ValueQuery(vr.Lo, vr.Hi)
	if err != nil {
		t.Fatal(err)
	}
	checkTrace(t, rec.last(t), res.IO)
}

// TestTraceReconciliationSidecarRefine re-runs the invariant with the opt-in
// sidecar-filtered refinement forced on a partition index, sequentially and
// with a parallel pool: the per-run sidecar reads of every worker must land
// in the span sums and in Result.IO.
func TestTraceReconciliationSidecarRefine(t *testing.T) {
	dem, err := TerrainDEM(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	vr := dem.ValueRange()
	for _, workers := range []int{1, 4} {
		rec := &recordingTracer{}
		db, err := Open(dem, Options{Method: IHilbert, Workers: workers, Tracer: rec})
		if err != nil {
			t.Fatal(err)
		}
		sr, ok := db.index.(interface{ SetSidecarRefine(bool) bool })
		if !ok || !sr.SetSidecarRefine(true) {
			t.Fatal("could not force sidecar refinement")
		}
		for _, iv := range [][2]float64{
			{vr.Lo + vr.Length()*0.4, vr.Lo + vr.Length()*0.5},
			{vr.Lo, vr.Hi},
		} {
			res, err := db.ValueQuery(iv[0], iv[1])
			if err != nil {
				t.Fatal(err)
			}
			checkTrace(t, rec.last(t), res.IO)
		}
		m := db.Metrics()
		if m.Engine.SidecarPagesRead == 0 {
			t.Fatalf("workers=%d: forced mode recorded no sidecar reads", workers)
		}
		engineReads := m.Engine.IndexPagesRead + m.Engine.SidecarPagesRead + m.Engine.CellPagesRead
		if engineReads != int64(m.ValueIO.Reads) {
			t.Fatalf("workers=%d: engine reads %d != store reads %d", workers, engineReads, m.ValueIO.Reads)
		}
		db.Close()
	}
}

func TestContourTrace(t *testing.T) {
	dem, err := TerrainDEM(32, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// SetTracer after Open must reinstall the sinks.
	col := NewTraceCollector(8)
	db.SetTracer(col)
	vr := dem.ValueRange()
	if _, err := db.ContourMap(vr.Lo + vr.Length()*0.5); err != nil {
		t.Fatal(err)
	}
	traces := col.Traces()
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want value + contour", len(traces))
	}
	if traces[0].Kind != obs.KindValue {
		t.Fatalf("first trace kind %q", traces[0].Kind)
	}
	ct := traces[1]
	if ct.Kind != obs.KindContour {
		t.Fatalf("second trace kind %q", ct.Kind)
	}
	if len(ct.Spans) != 1 || ct.Spans[0].Phase != obs.PhaseContour {
		t.Fatalf("contour spans: %+v", ct.Spans)
	}
	if ct.IO.Reads != 0 {
		t.Fatalf("contour assembly read %d pages", ct.IO.Reads)
	}
}

func TestMetricsRegistry(t *testing.T) {
	dem, err := TerrainDEM(64, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(dem, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	vr := dem.ValueRange()
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := db.ValueQuery(vr.Lo, vr.Lo+vr.Length()*0.3); err != nil {
			t.Fatal(err)
		}
		if _, err := db.PointQuery(geom.Pt(20.5, 30.5)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.ApproxValueQuery(vr.Lo, vr.Lo+vr.Length()*0.3); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Contours(vr.Lo + vr.Length()*0.5); err != nil {
		t.Fatal(err)
	}
	// An inverted interval is rejected before reaching the engine and must
	// not count as a query.
	if _, err := db.ValueQuery(5, 1); err == nil {
		t.Fatal("inverted interval accepted")
	}

	m := db.Metrics()
	if m.Engine.Queries != 3*n+1 {
		t.Fatalf("engine queries %d, want %d", m.Engine.Queries, 3*n+1)
	}
	byMethod := map[string]int64{}
	for _, mc := range m.Engine.Methods {
		byMethod[mc.Method] = mc.Queries
	}
	if byMethod["I-Hilbert"] != 2*n+1 || byMethod["Spatial"] != n {
		t.Fatalf("per-method queries: %v", byMethod)
	}
	if m.Engine.IndexPagesRead == 0 || m.Engine.CellPagesRead == 0 {
		t.Fatalf("pages by kind: %+v", m.Engine)
	}
	// Engine page totals reconcile with the per-store I/O counters across
	// all three read kinds (I-Hilbert's default path never touches the
	// sidecar, so its sidecar reads are zero — but they stay in the sum).
	engineReads := m.Engine.IndexPagesRead + m.Engine.SidecarPagesRead + m.Engine.CellPagesRead
	storeReads := int64(m.ValueIO.Reads + m.SpatialIO.Reads)
	if engineReads != storeReads {
		t.Fatalf("engine reads %d != store reads %d", engineReads, storeReads)
	}
	if m.Engine.WorkerItems == 0 {
		t.Fatal("no worker utilization recorded under Workers=2")
	}
	if m.Engine.ContourAssemblies != 1 {
		t.Fatalf("contours %d", m.Engine.ContourAssemblies)
	}
	if m.ValuePool == nil || m.SpatialPool == nil {
		t.Fatal("pool stats missing with pool enabled")
	}
	var probes int64
	for _, s := range m.ValuePool {
		probes += s.Hits + s.Misses
	}
	if probes == 0 {
		t.Fatal("no pool probes counted")
	}
	if out := m.String(); len(out) == 0 {
		t.Fatal("empty metrics rendering")
	}

	// LinearScan serves its filter step from the sidecar, so its sidecar
	// reads must be non-zero and the three read kinds must still sum to the
	// store totals.
	lsdb, err := Open(dem, Options{Method: LinearScan})
	if err != nil {
		t.Fatal(err)
	}
	defer lsdb.Close()
	for i := 0; i < 3; i++ {
		if _, err := lsdb.ValueQuery(vr.Lo, vr.Lo+vr.Length()*0.3); err != nil {
			t.Fatal(err)
		}
	}
	lm := lsdb.Metrics()
	if lm.Engine.SidecarPagesRead == 0 {
		t.Fatalf("LinearScan recorded no sidecar reads: %+v", lm.Engine)
	}
	lsReads := lm.Engine.IndexPagesRead + lm.Engine.SidecarPagesRead + lm.Engine.CellPagesRead
	if lsReads != int64(lm.ValueIO.Reads) {
		t.Fatalf("LinearScan engine reads %d != store reads %d", lsReads, lm.ValueIO.Reads)
	}

	// ColdCache runs report no pool shards.
	db2, err := Open(dem, Options{ColdCache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if m2 := db2.Metrics(); m2.ValuePool != nil || m2.SpatialPool != nil {
		t.Fatal("pool stats present with ColdCache")
	}
}

// countdownCtx is a context whose Err trips to context.Canceled after n
// polls — a deterministic way to cancel mid-refinement.
type countdownCtx struct {
	context.Context
	n atomic.Int64
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.n.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.n.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestValueQueryCancellation(t *testing.T) {
	dem, err := TerrainDEM(128, 42)
	if err != nil {
		t.Fatal(err)
	}
	vr := dem.ValueRange()
	for _, workers := range []int{1, 4} {
		db, err := Open(dem, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		before := runtime.NumGoroutine()
		ctx := newCountdownCtx(2)
		_, err = db.ValueQueryContext(ctx, vr.Lo, vr.Hi)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// All refinement workers must have been joined: the goroutine count
		// settles back to (at most) where it started.
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := runtime.NumGoroutine(); got > before {
			t.Fatalf("workers=%d: %d goroutines before, %d after cancel", workers, before, got)
		}
		db.Close()
	}
}

func TestCancellationAcrossQueryKinds(t *testing.T) {
	dem, err := TerrainDEM(64, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	vr := dem.ValueRange()
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.ValueQueryContext(canceled, vr.Lo, vr.Hi); !errors.Is(err, context.Canceled) {
		t.Fatalf("value: %v", err)
	}
	if _, err := db.ApproxValueQueryContext(canceled, vr.Lo, vr.Hi); !errors.Is(err, context.Canceled) {
		t.Fatalf("approx: %v", err)
	}
	if _, _, err := db.PointQueryStatsContext(newCountdownCtx(0), geom.Pt(12.5, 40.25)); !errors.Is(err, context.Canceled) {
		t.Fatalf("point: %v", err)
	}
	if _, err := db.ContourMapContext(canceled, vr.Lo+vr.Length()*0.5); !errors.Is(err, context.Canceled) {
		t.Fatalf("contour: %v", err)
	}
	if _, err := AndContext(canceled, []*DB{db}, []Interval{{Lo: vr.Lo, Hi: vr.Hi}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("and: %v", err)
	}
	// A canceled query must be classified as canceled, not failed.
	found := false
	for _, mc := range db.Metrics().Engine.Methods {
		if mc.Method == "I-Hilbert" {
			found = true
			if mc.Canceled == 0 {
				t.Fatalf("no canceled queries recorded: %+v", mc)
			}
			if mc.Failures != 0 {
				t.Fatalf("cancellations misclassified as failures: %+v", mc)
			}
		}
	}
	if !found {
		t.Fatal("I-Hilbert missing from metrics")
	}
}

func TestOpenContextCancellation(t *testing.T) {
	dem, err := TerrainDEM(128, 42)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OpenContext(ctx, dem, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential open: %v", err)
	}
	if _, err := OpenContext(ctx, dem, Options{Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel open: %v", err)
	}
}

// TestTracingDisabledStatsIntact guards the nil-tracer fast path: queries
// without a tracer still produce identical results and I/O accounting.
func TestTracingDisabledStatsIntact(t *testing.T) {
	dem, err := TerrainDEM(64, 42)
	if err != nil {
		t.Fatal(err)
	}
	vr := dem.ValueRange()
	plain, err := Open(dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	traced, err := Open(dem, Options{Tracer: NewTraceCollector(4)})
	if err != nil {
		t.Fatal(err)
	}
	defer traced.Close()
	a, err := plain.ValueQuery(vr.Lo+vr.Length()*0.4, vr.Lo+vr.Length()*0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := traced.ValueQuery(vr.Lo+vr.Length()*0.4, vr.Lo+vr.Length()*0.5)
	if err != nil {
		t.Fatal(err)
	}
	if a.IO != b.IO || a.CellsMatched != b.CellsMatched || a.Area != b.Area {
		t.Fatalf("tracing changed the query: %+v vs %+v", a.IO, b.IO)
	}
}
