package fielddb

import (
	"errors"

	"fielddb/internal/core"
)

// Typed sentinel errors of the facade. Returned errors wrap these (often with
// the offending values appended), so callers branch with errors.Is instead of
// matching message strings:
//
//	if errors.Is(err, fielddb.ErrInvertedInterval) { ... }
var (
	// ErrInvertedInterval reports a value interval with hi < lo. Every query
	// path validates its interval against it before touching an index.
	ErrInvertedInterval = errors.New("fielddb: inverted interval")
	// ErrUnknownMethod reports an Options.Method the facade doesn't know.
	ErrUnknownMethod = errors.New("fielddb: unknown method")
	// ErrNoPartition reports an operation that needs a partition-based value
	// index — subfield summaries (ApproxValueQuery, Subfields) or the on-disk
	// format (SaveIndex) — on a method without one (LinearScan, I-All).
	ErrNoPartition = errors.New("fielddb: no subfield partition")
	// ErrClosed reports a query or save against a DB or StoredIndex after
	// Close.
	ErrClosed = errors.New("fielddb: database is closed")
	// ErrBadConjunction reports an And call whose arguments cannot form a
	// conjunctive query: no conditions, mismatched slice lengths, or a nil
	// *DB element.
	ErrBadConjunction = errors.New("fielddb: invalid conjunctive query")
	// ErrBadTiling reports an Options combination the tiled planner cannot
	// build: TileSide with Auto or IAll, TileSide 1, NoIntervalSidecar under
	// tiling, or an unknown SidecarCodec.
	ErrBadTiling = errors.New("fielddb: invalid tiling options")
	// ErrNonFiniteBound reports a NaN or ±Inf query value — an interval end,
	// an open bound (ValueAbove/ValueBelow), a contour level, or a point
	// coordinate. Every Querier surface rejects non-finite inputs before
	// touching an index; the serving tier maps this error to HTTP 400.
	ErrNonFiniteBound = errors.New("fielddb: non-finite query value")
	// ErrNoSpatialIndex reports a conventional (point) query against a
	// surface without a spatial index — a StoredIndex, whose database file
	// carries only the value index.
	ErrNoSpatialIndex = errors.New("fielddb: no spatial index")
	// ErrBadTolerance reports an unusable aggregate error tolerance: NaN or
	// negative, as a query argument (ApproxAggregate) or a configuration knob
	// (Options.ApproxMaxErr). Zero is not an error — it means "the configured
	// default"; +Inf is valid and accepts any certified bound.
	ErrBadTolerance = errors.New("fielddb: invalid error tolerance")
)

// ErrUpdatesUnsupported reports UpdateSamples on a configuration that cannot
// apply live updates: an immutable field, the IQuad method (its spatial
// recursion is not maintained incrementally), or an index reopened from a
// pre-sidecar (version-1) file. Re-exported from internal/core so errors.Is
// works across the facade boundary.
var ErrUpdatesUnsupported = core.ErrUpdatesUnsupported
