# Developer entry points. `make check` is the gate every change must pass:
# it compiles everything, vets, and runs the full suite under the race
# detector (the concurrency invariants in concurrency_test.go only bite
# with -race).

GO ?= go

.PHONY: check build vet fmt test race cover bench-parallel bench-smoke tiled-smoke serve-smoke serve-bench-smoke approx-smoke bench-compare

check: build vet fmt race cover bench-smoke tiled-smoke serve-smoke serve-bench-smoke approx-smoke bench-compare

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt is a gate, not a suggestion: fail if any tracked Go file needs
# formatting (gofmt -l prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then 		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-mode coverage over the observability layer and the facade, with
# per-package floors: internal/obs is small and fully unit-testable (85%),
# the facade carries the error-path and cancellation tables (70%).
cover:
	$(GO) test -race -coverprofile=cover-obs.out ./internal/obs | \
		awk '{ print } /coverage:/ { if ($$5+0 < 85.0) { print "internal/obs coverage below 85%"; exit 1 } }'
	$(GO) test -race -coverprofile=cover-facade.out . | \
		awk '{ print } /coverage:/ { if ($$5+0 < 70.0) { print "facade coverage below 70%"; exit 1 } }'
	@rm -f cover-obs.out cover-facade.out

# Refinement-parallelism speedup table (cmd/fieldbench -workers).
bench-parallel:
	$(GO) run ./cmd/fieldbench -workers 8

# One-iteration pass over the value-range benchmarks: catches bit-rot in the
# benchmark harness without measuring anything (use `go test -bench` with a
# real -benchtime for numbers; see BENCH_BASELINE.json).
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkValueRange -benchtime 1x .

# -short-guarded smoke over the large-terrain tiled suite: exercises the
# same specs, row naming, and answer cross-check as the gated 1024×1024
# rows, on a terrain small enough to keep CI wall-clock flat.
tiled-smoke:
	$(GO) test -short -run TestTiledMeasureSmoke ./internal/bench

# End-to-end smoke over the HTTP serving tier: a real server on a loopback
# listener driven by the deterministic load generator, asserting zero failed
# requests (the full suite, including drain and coalescing tests, runs under
# `make race`).
serve-smoke:
	$(GO) test -short -run TestServeSmoke ./internal/serve

# Short 256-connection wall-clock drive over both wire formats, failing on
# any dropped response or zero admission-window coalescing — the serving
# tier's promises at real concurrency, in seconds instead of the full
# post_wire measurement's minutes.
serve-bench-smoke:
	$(GO) test -run TestServeBenchSmoke ./internal/serve

# -short-guarded smoke over the approximate-aggregate tier: builds fixture
# summaries, checks every answer's true error against its certified bound and
# the ≤4-page / ≥10×-fewer-pages claims, and pins the exact fallback past a
# tolerance the summary cannot certify.
approx-smoke:
	$(GO) test -short -run 'TestApproxMeasureSmoke|TestApproxMeasureFallback' ./internal/bench

# Regression gate on the simulated-disk metrics: measure the deterministic
# value-range suite (one 64-query rotation per cell, exactly the
# BenchmarkValueRange workload) and compare pages/op and simns/op against the
# newest section of BENCH_BASELINE.json. Wall-clock metrics are not gated.
BENCH_NEW ?= /tmp/fielddb-bench-new.json
bench-compare:
	$(GO) run ./cmd/fieldbench -bench-json $(BENCH_NEW)
	$(GO) run ./cmd/fieldbench -compare -tolerance 0.02 BENCH_BASELINE.json $(BENCH_NEW)
