# Developer entry points. `make check` is the gate every change must pass:
# it compiles everything, vets, and runs the full suite under the race
# detector (the concurrency invariants in concurrency_test.go only bite
# with -race).

GO ?= go

.PHONY: check build vet test race bench-parallel bench-smoke

check: build vet race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Refinement-parallelism speedup table (cmd/fieldbench -workers).
bench-parallel:
	$(GO) run ./cmd/fieldbench -workers 8

# One-iteration pass over the value-range benchmarks: catches bit-rot in the
# benchmark harness without measuring anything (use `go test -bench` with a
# real -benchtime for numbers; see BENCH_BASELINE.json).
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkValueRange -benchtime 1x .
