# Developer entry points. `make check` is the gate every change must pass:
# it compiles everything, vets, and runs the full suite under the race
# detector (the concurrency invariants in concurrency_test.go only bite
# with -race).

GO ?= go

.PHONY: check build vet test race bench-parallel

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Refinement-parallelism speedup table (cmd/fieldbench -workers).
bench-parallel:
	$(GO) run ./cmd/fieldbench -workers 8
