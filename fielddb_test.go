package fielddb

import (
	"math"
	"testing"

	"fielddb/internal/geom"
	"fielddb/internal/grid"
)

func TestOpenAndQuery(t *testing.T) {
	dem, err := TerrainDEM(64, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Method() != IHilbert {
		t.Fatalf("default method = %s", db.Method())
	}
	if db.Field() != Field(dem) {
		t.Fatal("Field accessor broken")
	}
	vr := dem.ValueRange()
	res, err := db.ValueQuery(vr.Lo+vr.Length()*0.4, vr.Lo+vr.Length()*0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsMatched == 0 || res.Area <= 0 {
		t.Fatalf("no answers: %+v", res)
	}
	if db.IOStats().Reads == 0 {
		t.Fatal("no I/O recorded")
	}
	if db.Stats().Cells != dem.NumCells() {
		t.Fatalf("stats cells %d", db.Stats().Cells)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(nil, Options{}); err == nil {
		t.Fatal("nil field accepted")
	}
	dem, _ := TerrainDEM(16, 1)
	if _, err := Open(dem, Options{Method: "bogus"}); err == nil {
		t.Fatal("bogus method accepted")
	}
	if _, err := Open(dem, Options{Curve: "bogus"}); err == nil {
		t.Fatal("bogus curve accepted")
	}
}

func TestAllMethodsViaFacade(t *testing.T) {
	dem, _ := TerrainDEM(32, 7)
	vr := dem.ValueRange()
	lo, hi := vr.Lo+vr.Length()*0.3, vr.Lo+vr.Length()*0.35
	var areas []float64
	for _, m := range []Method{LinearScan, IAll, IHilbert, IQuad} {
		db, err := Open(dem, Options{Method: m})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		res, err := db.ValueQuery(lo, hi)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		areas = append(areas, res.Area)
	}
	for i := 1; i < len(areas); i++ {
		if math.Abs(areas[i]-areas[0]) > 1e-6*(1+areas[0]) {
			t.Fatalf("methods disagree on area: %v", areas)
		}
	}
}

func TestValueAboveBelow(t *testing.T) {
	dem, _ := grid.FromFunc(geom.Pt(0, 0), 1, 1, 16, 16, func(x, y float64) float64 { return x })
	db, err := Open(dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	above, err := db.ValueAbove(12)
	if err != nil {
		t.Fatal(err)
	}
	// x >= 12 over a 16×16 domain: area 4×16 = 64.
	if math.Abs(above.Area-64) > 1e-6 {
		t.Fatalf("ValueAbove area = %g, want 64", above.Area)
	}
	below, err := db.ValueBelow(4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(below.Area-64) > 1e-6 {
		t.Fatalf("ValueBelow area = %g, want 64", below.Area)
	}
	if _, err := db.ValueQuery(5, 4); err == nil {
		t.Fatal("inverted interval accepted")
	}
}

func TestPointQueryFacade(t *testing.T) {
	dem, _ := grid.FromFunc(geom.Pt(0, 0), 1, 1, 16, 16, func(x, y float64) float64 { return 2*x + y })
	db, err := Open(dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := db.PointQuery(geom.Pt(3.5, 8.5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-15.5) > 1e-9 {
		t.Fatalf("PointQuery = %g, want 15.5", w)
	}
	if _, err := db.PointQuery(geom.Pt(-5, -5)); err == nil {
		t.Fatal("outside point accepted")
	}
}

func TestAndFacade(t *testing.T) {
	f1, _ := grid.FromFunc(geom.Pt(0, 0), 1, 1, 16, 16, func(x, y float64) float64 { return x })
	f2, _ := grid.FromFunc(geom.Pt(0, 0), 1, 1, 16, 16, func(x, y float64) float64 { return y })
	db1, _ := Open(f1, Options{})
	db2, _ := Open(f2, Options{})
	res, err := And([]*DB{db1, db2}, []Interval{{Lo: 2, Hi: 6}, {Lo: 8, Hi: 12}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Area-16) > 1e-6 {
		t.Fatalf("And area = %g, want 16", res.Area)
	}
}

func TestNoiseTINFacade(t *testing.T) {
	tn, err := NoiseTIN(400, 3)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(tn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.ValueAbove(70)
	if err != nil {
		t.Fatal(err)
	}
	// There must be noisy areas near roads/sources, but not everywhere.
	if res.Area <= 0 {
		t.Fatal("no region above 70 dB")
	}
	if res.Area >= tn.Bounds().Area() {
		t.Fatal("everything above 70 dB")
	}
}

func TestExactQueryFacade(t *testing.T) {
	dem, _ := TerrainDEM(32, 9)
	db, _ := Open(dem, Options{})
	vr := dem.ValueRange()
	mid := vr.Lo + vr.Length()/2
	res, err := db.ValueQuery(mid, mid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Isolines) == 0 {
		t.Fatal("exact query produced no isolines")
	}
	if len(res.Regions) != 0 {
		t.Fatal("exact query produced polygons")
	}
}
