package fielddb

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"fielddb/internal/geom"
	"fielddb/internal/storage"
)

// TestConcurrentMixedQueriesStats hammers one DB from 32 goroutines with a
// mix of every facade query kind and checks the accounting invariant: the
// pager totals grow by exactly the sum of the per-query statistics, for the
// value store and the spatial store independently. Run with -race this is
// also the concurrency smoke test for the whole query path.
func TestConcurrentMixedQueriesStats(t *testing.T) {
	dem, err := TerrainDEM(64, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(dem, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	vr := dem.ValueRange()
	b := dem.Bounds()
	baseVal := db.IOStats()
	baseSp := db.SpatialIOStats()

	var (
		mu     sync.Mutex
		sumVal storage.Stats
		sumSp  storage.Stats
	)
	const goroutines = 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for it := 0; it < 8; it++ {
				var val, sp storage.Stats
				switch it % 4 {
				case 0:
					lo := vr.Lo + vr.Length()*rng.Float64()*0.8
					hi := lo + vr.Length()*(0.05+0.2*rng.Float64())
					res, err := db.ValueQuery(lo, hi)
					if err != nil {
						t.Error(err)
						return
					}
					val = res.IO
				case 1:
					p := geom.Pt(
						b.Min.X+rng.Float64()*b.Width(),
						b.Min.Y+rng.Float64()*b.Height(),
					)
					// A point outside every cell is fine; its reads count too.
					_, st, _ := db.PointQueryStats(p)
					sp = st
				case 2:
					level := vr.Lo + vr.Length()*(0.2+0.6*rng.Float64())
					cr, err := db.ContourMap(level)
					if err != nil {
						t.Error(err)
						return
					}
					val = cr.IO
				case 3:
					lo := vr.Lo + vr.Length()*rng.Float64()*0.5
					ar, err := db.ApproxValueQuery(lo, lo+vr.Length()*0.1)
					if err != nil {
						t.Error(err)
						return
					}
					val = ar.IO
				}
				mu.Lock()
				sumVal = sumVal.Add(val)
				sumSp = sumSp.Add(sp)
				mu.Unlock()
			}
		}(int64(g) + 1)
	}
	wg.Wait()

	if got := db.IOStats().Sub(baseVal); got != sumVal {
		t.Errorf("value store totals %+v != sum of per-query stats %+v", got, sumVal)
	}
	if got := db.SpatialIOStats().Sub(baseSp); got != sumSp {
		t.Errorf("spatial store totals %+v != sum of per-query stats %+v", got, sumSp)
	}
	if sumVal.Reads == 0 || sumSp.Reads == 0 {
		t.Fatalf("workload did no I/O: value %+v spatial %+v", sumVal, sumSp)
	}
}

// TestParallelRefinementDeterministic checks the acceptance bar for the
// worker pool: on a refinement-heavy query, Workers = 8 must return
// byte-identical regions, the same area, and identical per-query I/O
// statistics as the sequential execution.
func TestParallelRefinementDeterministic(t *testing.T) {
	dem, err := TerrainDEM(256, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vr := dem.ValueRange()
	queries := [][2]float64{
		{vr.Lo + vr.Length()*0.30, vr.Lo + vr.Length()*0.55}, // wide: many runs
		{vr.Lo + vr.Length()*0.48, vr.Lo + vr.Length()*0.52},
		{vr.Lo + vr.Length()*0.10, vr.Lo + vr.Length()*0.12},
	}
	for _, q := range queries {
		db.SetWorkers(1)
		seq, err := db.ValueQuery(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		db.SetWorkers(8)
		par, err := db.ValueQuery(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Regions, par.Regions) {
			t.Errorf("query %v: parallel regions differ from sequential", q)
		}
		if seq.Area != par.Area {
			t.Errorf("query %v: area %v (seq) != %v (par)", q, seq.Area, par.Area)
		}
		if seq.IO != par.IO {
			t.Errorf("query %v: IO %+v (seq) != %+v (par)", q, seq.IO, par.IO)
		}
		if seq.CellsMatched != par.CellsMatched || seq.CellsFetched != par.CellsFetched {
			t.Errorf("query %v: cell counters differ: seq %d/%d par %d/%d", q,
				seq.CellsFetched, seq.CellsMatched, par.CellsFetched, par.CellsMatched)
		}
		if seq.CellsMatched == 0 {
			t.Errorf("query %v matched nothing; not a refinement test", q)
		}
	}
}
