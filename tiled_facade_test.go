package fielddb

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"
)

// TestTiledFacade opens a terrain with TileSide set and checks answers are
// byte-identical to the untiled build of the same method, for both codecs.
func TestTiledFacade(t *testing.T) {
	dem, err := TerrainDEM(64, 42)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Open(dem, Options{Method: LinearScan})
	if err != nil {
		t.Fatal(err)
	}
	vr := dem.ValueRange()
	queries := [][2]float64{
		{vr.Lo + vr.Length()*0.45, vr.Lo + vr.Length()*0.55},
		{vr.Hi - vr.Length()*0.02, vr.Hi},
		{vr.Lo, vr.Lo + vr.Length()*0.1},
	}
	for _, codec := range []string{"", "raw", "packed"} {
		db, err := Open(dem, Options{Method: LinearScan, TileSide: 16, SidecarCodec: codec})
		if err != nil {
			t.Fatal(err)
		}
		if db.Method() != "Tiled-LinearScan" {
			t.Fatalf("codec %q: method = %s", codec, db.Method())
		}
		tiles := db.Tiles()
		if len(tiles) != 16 { // 64/16 = 4 per axis
			t.Fatalf("codec %q: %d tiles", codec, len(tiles))
		}
		cells := 0
		for _, ti := range tiles {
			cells += ti.Cells
			if ti.ValueRange.Lo > ti.ValueRange.Hi {
				t.Fatalf("codec %q: inverted tile summary %+v", codec, ti)
			}
		}
		if cells != dem.NumCells() {
			t.Fatalf("codec %q: tiles cover %d of %d cells", codec, cells, dem.NumCells())
		}
		for _, q := range queries {
			want, err := flat.ValueQuery(q[0], q[1])
			if err != nil {
				t.Fatal(err)
			}
			got, err := db.ValueQuery(q[0], q[1])
			if err != nil {
				t.Fatal(err)
			}
			if got.CellsMatched != want.CellsMatched || got.Area != want.Area ||
				len(got.Regions) != len(want.Regions) {
				t.Fatalf("codec %q: query %v: got %d cells area %g, want %d cells area %g",
					codec, q, got.CellsMatched, got.Area, want.CellsMatched, want.Area)
			}
		}
		if flat.Tiles() != nil {
			t.Fatal("untiled DB reports tiles")
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTiledFacadeValidation covers the ErrBadTiling option combinations.
func TestTiledFacadeValidation(t *testing.T) {
	dem, _ := TerrainDEM(16, 1)
	bad := []Options{
		{TileSide: 1},
		{TileSide: 8, Method: Auto},
		{TileSide: 8, Method: IAll},
		{TileSide: 8, NoIntervalSidecar: true},
		{SidecarCodec: "bogus"},
		{SidecarCodec: "packed", NoIntervalSidecar: true},
	}
	for _, opts := range bad {
		if _, err := Open(dem, opts); !errors.Is(err, ErrBadTiling) {
			t.Errorf("opts %+v: err = %v, want ErrBadTiling", opts, err)
		}
	}
}

// TestTiledFacadeUpdatesAndSnapshot runs UpdateSamples against a tiled DB:
// the batch routes to the owning tiles, snapshots stay pinned, and post-batch
// answers match a fresh untiled database over the mutated field.
func TestTiledFacadeUpdatesAndSnapshot(t *testing.T) {
	dem, err := TerrainDEM(64, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(dem, Options{Method: LinearScan, TileSide: 16, SidecarCodec: "packed"})
	if err != nil {
		t.Fatal(err)
	}
	vr := dem.ValueRange()
	lo, hi := vr.Lo+vr.Length()*0.45, vr.Lo+vr.Length()*0.55
	before, err := db.ValueQuery(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	nx := 65
	updates := []SampleUpdate{
		{Sample: 8*nx + 8, Value: vr.Hi + 10},
		{Sample: 8*nx + 56, Value: vr.Lo - 10},
		{Sample: 56*nx + 8, Value: (vr.Lo + vr.Hi) / 2},
	}
	us, err := db.UpdateSamples(context.Background(), updates)
	if err != nil {
		t.Fatal(err)
	}
	if us.CellsTouched == 0 {
		t.Fatalf("empty update stats %+v", us)
	}

	// The pinned snapshot still answers the pre-batch state.
	old, err := snap.ValueQuery(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if old.CellsMatched != before.CellsMatched || old.Area != before.Area {
		t.Fatalf("snapshot drifted: %d/%g, want %d/%g",
			old.CellsMatched, old.Area, before.CellsMatched, before.Area)
	}

	// Live answers match a fresh untiled database over the mutated field.
	fresh, err := Open(dem, Options{Method: LinearScan})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][2]float64{{lo, hi}, {vr.Lo - 10, vr.Lo}, {vr.Hi, vr.Hi + 10}} {
		want, err := fresh.ValueQuery(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := db.ValueQuery(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if got.CellsMatched != want.CellsMatched || got.Area != want.Area {
			t.Fatalf("query %v after update: got %d/%g, want %d/%g",
				q, got.CellsMatched, got.Area, want.CellsMatched, want.Area)
		}
	}
	// ValueAbove picks up the new maximum through the widened cached range.
	above, err := db.ValueAbove(vr.Hi + 1)
	if err != nil {
		t.Fatal(err)
	}
	if above.CellsMatched == 0 {
		t.Fatal("new maximum not visible to ValueAbove")
	}
}

// TestTiledFacadeBatch: explicit batched value queries over a tiled DB are
// byte-identical to solo queries.
func TestTiledFacadeBatch(t *testing.T) {
	dem, err := TerrainDEM(64, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(dem, Options{Method: LinearScan, TileSide: 16, SidecarCodec: "packed"})
	if err != nil {
		t.Fatal(err)
	}
	vr := dem.ValueRange()
	intervals := []Interval{
		{Lo: vr.Lo + vr.Length()*0.40, Hi: vr.Lo + vr.Length()*0.50},
		{Lo: vr.Lo + vr.Length()*0.45, Hi: vr.Lo + vr.Length()*0.55},
		{Lo: vr.Hi - vr.Length()*0.05, Hi: vr.Hi},
	}
	batch, err := db.ValueQueryBatch(context.Background(), intervals)
	if err != nil {
		t.Fatal(err)
	}
	for i, iv := range intervals {
		solo, err := db.ValueQuery(iv.Lo, iv.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].CellsMatched != solo.CellsMatched || batch[i].Area != solo.Area ||
			batch[i].IO != solo.IO {
			t.Fatalf("query %d: batch %+v, solo %+v", i, batch[i].IO, solo.IO)
		}
	}
}

// TestTiledFacadeSaveOpen round-trips a tiled DB through SaveIndex/OpenIndex:
// the stored index dispatches to the tiled decoder and answers identically.
func TestTiledFacadeSaveOpen(t *testing.T) {
	dem, err := TerrainDEM(64, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(dem, Options{Method: LinearScan, TileSide: 16, SidecarCodec: "packed"})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiled.fidx")
	if err := db.SaveIndex(path); err != nil {
		t.Fatal(err)
	}
	stored, err := OpenIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer stored.Close()
	if stored.Method() != "Tiled-LinearScan" {
		t.Fatalf("stored method = %s", stored.Method())
	}
	if sf := stored.Subfields(); sf != nil {
		t.Fatalf("tiled stored index reports %d subfields", len(sf))
	}
	vr := dem.ValueRange()
	for _, q := range [][2]float64{
		{vr.Lo + vr.Length()*0.45, vr.Lo + vr.Length()*0.55},
		{vr.Hi - vr.Length()*0.02, vr.Hi},
	} {
		want, err := db.ValueQuery(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := stored.ValueQuery(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if got.CellsMatched != want.CellsMatched ||
			math.Abs(got.Area-want.Area) > 1e-9*(1+want.Area) {
			t.Fatalf("query %v: stored %d/%g, want %d/%g",
				q, got.CellsMatched, got.Area, want.CellsMatched, want.Area)
		}
	}
	// The stored batch path works on tiled files too.
	res, err := stored.ValueQueryBatch(context.Background(), []Interval{
		{Lo: vr.Lo + vr.Length()*0.45, Hi: vr.Lo + vr.Length()*0.50},
		{Lo: vr.Lo + vr.Length()*0.48, Hi: vr.Lo + vr.Length()*0.53},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r == nil || r.CellsMatched == 0 {
			t.Fatalf("batch result %d empty", i)
		}
	}
}

// TestTiledFacadeIHilbertInner: a partitioned inner method tiles through the
// facade too (queries only; no on-disk format).
func TestTiledFacadeIHilbertInner(t *testing.T) {
	dem, err := TerrainDEM(64, 42)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Open(dem, Options{Method: LinearScan})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(dem, Options{Method: IHilbert, TileSide: 16})
	if err != nil {
		t.Fatal(err)
	}
	if db.Method() != "Tiled-I-Hilbert" {
		t.Fatalf("method = %s", db.Method())
	}
	vr := dem.ValueRange()
	lo, hi := vr.Lo+vr.Length()*0.45, vr.Lo+vr.Length()*0.55
	want, err := flat.ValueQuery(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.ValueQuery(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if got.CellsMatched != want.CellsMatched || got.Area != want.Area {
		t.Fatalf("got %d/%g, want %d/%g", got.CellsMatched, got.Area, want.CellsMatched, want.Area)
	}
	// Tiled indexes have an on-disk format only with the LinearScan inner.
	if err := db.SaveIndex(filepath.Join(t.TempDir(), "x.fidx")); err == nil {
		t.Fatal("Tiled-IHilbert SaveIndex accepted")
	}
}
