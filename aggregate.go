package fielddb

// The approximate aggregate tier: ApproxAggregate answers "how many cells —
// and how much area — fall in this value interval" from a few dedicated
// summary pages, with a certified error bound, in O(1) page reads at any
// selectivity. When the certified bound exceeds the caller's tolerance the
// exact pipeline runs instead, so the answer is never silently worse than
// asked for. See DESIGN.md §5.11.

import (
	"context"
	"fmt"
	"math"

	"fielddb/internal/core"
	"fielddb/internal/geom"
)

// AggregateResult is the outcome of an aggregate query over a value interval:
// matching cell count and planar area, either approximate with certified
// error bounds (Approx true) or exact through the regular pipeline (Fallback
// true, bounds zero).
type AggregateResult = core.AggregateResult

// DefaultApproxMaxErr is the aggregate error tolerance used when neither the
// call (maxErr == 0) nor Options.ApproxMaxErr chose one: one percent of the
// field, measured on the matched-area fraction.
const DefaultApproxMaxErr = 0.01

// resolveMaxErr folds one call's tolerance argument with the surface's
// configured default: NaN and negative values are rejected with
// ErrBadTolerance, 0 selects the default, +Inf passes through (it accepts any
// certified bound — the serving tier's degraded mode).
func resolveMaxErr(maxErr, dflt float64) (float64, error) {
	if math.IsNaN(maxErr) || maxErr < 0 {
		return 0, fmt.Errorf("%w %g", ErrBadTolerance, maxErr)
	}
	if maxErr == 0 {
		return dflt, nil
	}
	return maxErr, nil
}

// checkApproxMaxErr validates the Options / OpenIndexOptions tolerance knob
// at open time, resolving 0 to DefaultApproxMaxErr.
func checkApproxMaxErr(v float64) (float64, error) {
	if math.IsNaN(v) || v < 0 {
		return 0, fmt.Errorf("%w: ApproxMaxErr %g", ErrBadTolerance, v)
	}
	if v == 0 {
		return DefaultApproxMaxErr, nil
	}
	return v, nil
}

// ApproxAggregate answers the aggregate query "how many cells, and how much
// area, have a value in [lo, hi]" with a certified error tolerance of maxErr
// on the matched-area fraction. Indexes with a field summary (every
// partition-based or tiled index built at the current version) answer from
// the summary pages — at most four physical reads at any selectivity — and
// fall back to the exact pipeline when the certified bound exceeds maxErr;
// methods without a summary (LinearScan, I-All, Auto) always answer exactly.
// maxErr 0 selects the configured default (Options.ApproxMaxErr, or
// DefaultApproxMaxErr); +Inf accepts any certified bound; NaN and negative
// values fail with ErrBadTolerance.
func (db *DB) ApproxAggregate(lo, hi, maxErr float64) (*AggregateResult, error) {
	return db.ApproxAggregateContext(context.Background(), lo, hi, maxErr)
}

// ApproxAggregateContext is ApproxAggregate with cancellation of the exact
// fallback pipeline (the summary probe itself is a handful of page reads).
func (db *DB) ApproxAggregateContext(ctx context.Context, lo, hi, maxErr float64) (*AggregateResult, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	return aggregateOn(ctx, db.index, lo, hi, maxErr, db.approxMaxErr)
}

// ApproxAggregate answers the aggregate query against the stored pages, with
// the same contract as DB.ApproxAggregate.
func (s *StoredIndex) ApproxAggregate(lo, hi, maxErr float64) (*AggregateResult, error) {
	return s.ApproxAggregateContext(context.Background(), lo, hi, maxErr)
}

// ApproxAggregateContext is ApproxAggregate with cancellation. A file written
// before the summary format (catalog v5) has no summary pages and always
// answers exactly.
func (s *StoredIndex) ApproxAggregateContext(ctx context.Context, lo, hi, maxErr float64) (*AggregateResult, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	return aggregateOn(ctx, s.index, lo, hi, maxErr, s.approxMaxErr)
}

// ApproxAggregate answers the aggregate query at the snapshot's pinned epoch:
// the summary pages are read as they were at acquisition (update batches
// version them copy-on-write like any data page), so the certified bounds
// describe the pinned field state.
func (s *Snapshot) ApproxAggregate(lo, hi, maxErr float64) (*AggregateResult, error) {
	return s.ApproxAggregateContext(context.Background(), lo, hi, maxErr)
}

// ApproxAggregateContext is ApproxAggregate with cancellation.
func (s *Snapshot) ApproxAggregateContext(ctx context.Context, lo, hi, maxErr float64) (*AggregateResult, error) {
	if err := s.db.checkOpen(); err != nil {
		return nil, err
	}
	if err := checkInterval(lo, hi); err != nil {
		return nil, err
	}
	tol, err := resolveMaxErr(maxErr, s.db.approxMaxErr)
	if err != nil {
		return nil, err
	}
	q := geom.Interval{Lo: lo, Hi: hi}
	if aq, ok := s.snap.(core.AggregateQuerier); ok {
		return aq.AggregateContext(ctx, q, tol)
	}
	// Methods without an aggregate-capable snapshot (LinearScan, I-All, Auto)
	// answer exactly through the pinned query path.
	exact, err := s.snap.QueryContext(ctx, q)
	if err != nil {
		return nil, err
	}
	return core.AggregateFromExact(q, tol, exact, s.stats.Cells), nil
}

// aggregateOn is the shared dispatch behind DB and StoredIndex aggregates:
// validate, resolve the tolerance, and route to the index's summary-backed
// AggregateQuerier capability or the exact fallback.
func aggregateOn(ctx context.Context, idx core.Index, lo, hi, maxErr, dflt float64) (*AggregateResult, error) {
	if err := checkInterval(lo, hi); err != nil {
		return nil, err
	}
	tol, err := resolveMaxErr(maxErr, dflt)
	if err != nil {
		return nil, err
	}
	q := geom.Interval{Lo: lo, Hi: hi}
	if aq, ok := idx.(core.AggregateQuerier); ok {
		return aq.AggregateContext(ctx, q, tol)
	}
	return core.AggregateExact(ctx, idx, q, tol, idx.Stats().Cells)
}

// ApproxValueQuery answers F⁻¹(lo ≤ w ≤ hi) approximately from the stored
// subfield metadata, as DB.ApproxValueQuery does; a tiled file has no
// subfield partition and fails with ErrNoPartition.
func (s *StoredIndex) ApproxValueQuery(lo, hi float64) (*ApproxResult, error) {
	return s.ApproxValueQueryContext(context.Background(), lo, hi)
}

// ApproxValueQueryContext is ApproxValueQuery with cancellation.
func (s *StoredIndex) ApproxValueQueryContext(ctx context.Context, lo, hi float64) (*ApproxResult, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if err := checkInterval(lo, hi); err != nil {
		return nil, err
	}
	aq, ok := s.index.(core.ApproxQuerier)
	if !ok {
		return nil, fmt.Errorf("%w: method %s has no subfield summaries", ErrNoPartition, s.Method())
	}
	return aq.ApproxQueryContext(ctx, geom.Interval{Lo: lo, Hi: hi})
}

// ApproxValueQuery answers F⁻¹(lo ≤ w ≤ hi) approximately at the snapshot's
// pinned state: the subfield metadata is read from the partition state pinned
// at acquisition, so a later re-cut never leaks into the answer.
func (s *Snapshot) ApproxValueQuery(lo, hi float64) (*ApproxResult, error) {
	return s.ApproxValueQueryContext(context.Background(), lo, hi)
}

// ApproxValueQueryContext is ApproxValueQuery with cancellation.
func (s *Snapshot) ApproxValueQueryContext(ctx context.Context, lo, hi float64) (*ApproxResult, error) {
	if err := s.db.checkOpen(); err != nil {
		return nil, err
	}
	if err := checkInterval(lo, hi); err != nil {
		return nil, err
	}
	aq, ok := s.snap.(core.ApproxQuerier)
	if !ok {
		return nil, fmt.Errorf("%w: method %s has no subfield summaries", ErrNoPartition, s.method)
	}
	return aq.ApproxQueryContext(ctx, geom.Interval{Lo: lo, Hi: hi})
}
